// The product graph (PG): policy automata × network topology (paper §4.1).
//
// Each policy regex is reversed (probes travel opposite to traffic) and
// compiled to a minimal total DFA over the alphabet of switch ids. A PG
// *tag* is an interned vector of automaton states — one state per regex —
// and a PG *virtual node* is a (switch, tag) pair. There is a PG edge from
// (X, t) to (Y, t') when X-Y is a topology link and t' = δ(t, Y); edges
// point in the probe direction (destination → sources), so traffic flows
// along reversed PG edges.
//
// Probes for destination d originate at the probe-sending node
// (d, δ(t_init, d)). The graph built here is already pruned to nodes that
// are (a) reachable from some probe-sending state and (b) useful — able to
// reach a node whose tag can yield a finite policy rank (see prune.h) —
// and tags are minimized by bisimulation + compaction (see tag_minimize.h).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/decompose.h"
#include "automata/dfa.h"
#include "lang/ast.h"
#include "topology/topology.h"

namespace contra::pg {

inline constexpr uint32_t kInvalidTag = UINT32_MAX;
inline constexpr uint32_t kInvalidPgNode = UINT32_MAX;

/// A PG edge in probe direction: the probe moves across `link` to switch
/// `to`, where its tag becomes `to_tag`.
struct PgEdge {
  topology::NodeId to = topology::kInvalidNode;
  uint32_t to_tag = kInvalidTag;
  topology::LinkId link = topology::kInvalidLink;
};

class ProductGraph {
 public:
  /// Builds, prunes, and tag-minimizes the PG for a decomposed policy.
  static ProductGraph build(const topology::Topology& topo,
                            const analysis::Decomposition& decomposition);

  const topology::Topology& topo() const { return *topo_; }

  uint32_t num_tags() const { return static_cast<uint32_t>(accepting_.size()); }
  uint32_t num_nodes() const { return static_cast<uint32_t>(node_locs_.size()); }
  uint32_t num_edges() const;
  uint32_t num_regexes() const { return num_regexes_; }

  /// Bits needed to carry a tag in a packet/probe header.
  uint32_t tag_bits() const;

  /// Tag transition: probe (or packet, in reverse) enters switch `to` while
  /// carrying `tag`. Returns kInvalidTag when the resulting virtual node was
  /// pruned (no policy-compliant continuation).
  uint32_t next_tag(uint32_t tag, topology::NodeId to) const;

  /// Initial tag of probes originating at destination `d`, or kInvalidTag if
  /// the policy forbids d as a destination.
  uint32_t origin_tag(topology::NodeId d) const { return origin_tags_.at(d); }

  /// Which regexes accept at this tag, in collect_regexes(policy) order.
  const std::vector<bool>& accepting(uint32_t tag) const { return accepting_[tag]; }

  /// Whether a tag could produce a finite rank for some dynamic-test outcome.
  bool possibly_finite(uint32_t tag) const { return possibly_finite_[tag]; }

  /// Virtual-node lookup: index of (loc, tag), or kInvalidPgNode.
  uint32_t node_index(topology::NodeId loc, uint32_t tag) const;
  bool node_exists(topology::NodeId loc, uint32_t tag) const {
    return node_index(loc, tag) != kInvalidPgNode;
  }

  topology::NodeId node_location(uint32_t node) const { return node_locs_[node]; }
  uint32_t node_tag(uint32_t node) const { return node_tags_[node]; }

  /// PG out-edges (probe direction) of a virtual node.
  const std::vector<PgEdge>& out_edges(uint32_t node) const { return out_edges_[node]; }
  const std::vector<PgEdge>& out_edges(topology::NodeId loc, uint32_t tag) const {
    return out_edges_[node_index(loc, tag)];
  }

  /// All virtual nodes at a switch (used for table sizing and forwarding).
  const std::vector<uint32_t>& nodes_at(topology::NodeId loc) const { return nodes_at_[loc]; }

  /// The regexes whose acceptance bits accepting() reports, policy order.
  const std::vector<lang::RegexPtr>& regexes() const { return regexes_; }

  std::string to_string() const;

 private:
  friend ProductGraph build_unpruned(const topology::Topology&,
                                     const analysis::Decomposition&);
  friend void prune_useless(ProductGraph&);
  friend void minimize_tags(ProductGraph&, const analysis::Decomposition&);

  void rebuild_node_index();

  const topology::Topology* topo_ = nullptr;
  uint32_t num_regexes_ = 0;
  std::vector<lang::RegexPtr> regexes_;

  // Tag tables (dense): tag x topology-node -> tag.
  std::vector<std::vector<uint32_t>> tag_trans_;
  std::vector<std::vector<bool>> accepting_;   // per tag, per regex
  std::vector<bool> possibly_finite_;          // per tag
  std::vector<uint32_t> origin_tags_;          // per topology node

  // Virtual nodes.
  std::vector<topology::NodeId> node_locs_;
  std::vector<uint32_t> node_tags_;
  std::vector<std::vector<PgEdge>> out_edges_;
  std::vector<std::vector<uint32_t>> nodes_at_;
  std::unordered_map<uint64_t, uint32_t> node_index_;
};

/// Raw PG before reachability/usefulness pruning and tag minimization.
/// Exposed for the correctness oracle (src/oracle), which compares routing
/// fixed points on the minimized and un-minimized graphs to validate that
/// the tag-merge is sound. Production callers want ProductGraph::build.
ProductGraph build_unpruned(const topology::Topology& topo,
                            const analysis::Decomposition& decomposition);

}  // namespace contra::pg
