// Tag minimization (paper §6.1: "minimizing the number of tags ... reducing
// the number of bits to represent the tags").
//
// Two tags are interchangeable when they accept the same regexes, agree on
// possible finiteness, and transition to interchangeable tags on every
// switch (a bisimulation over the tag table). Merging them shrinks packet
// headers and switch tables without changing forwarding behaviour. After
// merging, tags are compacted to a dense range, dropping tags no surviving
// virtual node uses.
#pragma once

#include "analysis/decompose.h"

namespace contra::pg {

class ProductGraph;

/// In-place bisimulation merge + compaction.
void minimize_tags(ProductGraph& graph, const analysis::Decomposition& decomposition);

}  // namespace contra::pg
