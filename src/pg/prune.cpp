#include "pg/prune.h"

#include <deque>
#include <vector>

#include "pg/product_graph.h"

namespace contra::pg {

void prune_useless(ProductGraph& graph) {
  const uint32_t n = graph.num_nodes();

  // Reverse adjacency over PG edges.
  std::vector<std::vector<uint32_t>> reverse_adj(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (const PgEdge& e : graph.out_edges_[i]) {
      const uint32_t to_idx = graph.node_index(e.to, e.to_tag);
      reverse_adj[to_idx].push_back(i);
    }
  }

  // Useful = can reach (in probe direction) a node whose tag may produce a
  // finite rank. Seed with the possibly-finite nodes themselves, walk the
  // reversed edges.
  std::vector<bool> useful(n, false);
  std::deque<uint32_t> frontier;
  for (uint32_t i = 0; i < n; ++i) {
    if (graph.possibly_finite_[graph.node_tags_[i]]) {
      useful[i] = true;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const uint32_t i = frontier.front();
    frontier.pop_front();
    for (uint32_t pred : reverse_adj[i]) {
      if (!useful[pred]) {
        useful[pred] = true;
        frontier.push_back(pred);
      }
    }
  }

  // Compact the node arrays.
  std::vector<uint32_t> remap(n, kInvalidPgNode);
  std::vector<topology::NodeId> locs;
  std::vector<uint32_t> tags;
  std::vector<std::vector<PgEdge>> edges;
  for (uint32_t i = 0; i < n; ++i) {
    if (!useful[i]) continue;
    remap[i] = static_cast<uint32_t>(locs.size());
    locs.push_back(graph.node_locs_[i]);
    tags.push_back(graph.node_tags_[i]);
    edges.emplace_back();
    for (const PgEdge& e : graph.out_edges_[i]) {
      if (useful[graph.node_index(e.to, e.to_tag)]) edges.back().push_back(e);
    }
  }
  graph.node_locs_ = std::move(locs);
  graph.node_tags_ = std::move(tags);
  graph.out_edges_ = std::move(edges);
  graph.rebuild_node_index();

  // Destinations whose probe-sending node vanished are forbidden by policy.
  for (topology::NodeId d = 0; d < graph.topo_->num_nodes(); ++d) {
    const uint32_t t = graph.origin_tags_[d];
    if (t == kInvalidTag || !graph.node_exists(d, t)) graph.origin_tags_[d] = kInvalidTag;
  }
}

}  // namespace contra::pg
