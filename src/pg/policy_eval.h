// Policy evaluation at PG states — the paper's f() and s() functions (§4.3).
//
//  f(pid, mv): the propagation objective — ranks a metrics vector under one
//      decomposed subpolicy; used when a switch decides whether an incoming
//      probe beats the stored FwdT entry for the same (dst, tag, pid).
//  s(tag, mv): the source-selection rank — evaluates the ORIGINAL policy,
//      resolving regex tests from the tag's acceptance bits and dynamic
//      tests from the actual metrics; used to pick BestT at traffic sources.
#pragma once

#include <algorithm>

#include "analysis/decompose.h"
#include "lang/eval.h"
#include "lang/rank.h"
#include "pg/product_graph.h"

namespace contra::pg {

/// Metrics vector as carried by probes: a value per decomposition.attrs slot.
struct MetricsVector {
  double util = 0.0;
  double lat = 0.0;
  double len = 0.0;

  lang::PathAttributes to_attrs() const { return {util, lat, len}; }
  /// Extends by one link in the probe's direction of travel.
  void extend(double link_util, double link_lat) {
    util = std::max(util, link_util);
    lat += link_lat;
    len += 1.0;
  }
};

class PolicyEvaluator {
 public:
  PolicyEvaluator(const ProductGraph& graph, const analysis::Decomposition& decomposition);

  /// f — propagation rank of mv under subpolicy `pid`.
  lang::Rank propagation_rank(uint32_t pid, const MetricsVector& mv) const;

  /// s — true policy rank of a candidate with this tag and metrics.
  lang::Rank selection_rank(uint32_t tag, const MetricsVector& mv) const;

  uint32_t num_pids() const { return static_cast<uint32_t>(decomposition_->subpolicies.size()); }

 private:
  const ProductGraph* graph_;
  const analysis::Decomposition* decomposition_;
  /// atom index -> regex index in graph->regexes() (UINT32_MAX for dynamic).
  std::vector<uint32_t> atom_regex_;
  std::vector<lang::TestPtr> atoms_;
};

}  // namespace contra::pg
