#include "pg/tag_minimize.h"

#include <algorithm>
#include <map>
#include <vector>

#include "pg/product_graph.h"

namespace contra::pg {

void minimize_tags(ProductGraph& graph, const analysis::Decomposition& decomposition) {
  (void)decomposition;
  const uint32_t num_tags = static_cast<uint32_t>(graph.tag_trans_.size());
  const uint32_t num_locations = graph.topo_->num_nodes();
  if (num_tags == 0) return;

  // --- Bisimulation merge (Moore refinement over the tag table) -----------
  // Initial partition: acceptance bit-vector + possible finiteness.
  std::vector<uint32_t> block(num_tags);
  {
    std::map<std::pair<std::vector<bool>, bool>, uint32_t> classes;
    for (uint32_t t = 0; t < num_tags; ++t) {
      auto key = std::make_pair(graph.accepting_[t], graph.possibly_finite_[t]);
      auto [it, _] = classes.emplace(std::move(key), static_cast<uint32_t>(classes.size()));
      block[t] = it->second;
    }
  }

  // Refine until the number of blocks is stable (Moore's algorithm; the
  // block count is monotone non-decreasing and bounded by num_tags).
  size_t num_blocks = 0;
  for (uint32_t b : block) num_blocks = std::max<size_t>(num_blocks, b + 1);
  while (true) {
    std::map<std::vector<uint32_t>, uint32_t> sig_ids;
    std::vector<uint32_t> next(num_tags);
    for (uint32_t t = 0; t < num_tags; ++t) {
      std::vector<uint32_t> sig;
      sig.reserve(num_locations + 1);
      sig.push_back(block[t]);
      for (uint32_t loc = 0; loc < num_locations; ++loc) {
        sig.push_back(block[graph.tag_trans_[t][loc]]);
      }
      auto [it, _] = sig_ids.emplace(std::move(sig), static_cast<uint32_t>(sig_ids.size()));
      next[t] = it->second;
    }
    block = std::move(next);
    if (sig_ids.size() == num_blocks) break;
    num_blocks = sig_ids.size();
  }

  // --- Compaction: keep only blocks used by surviving virtual nodes or as
  // an origin tag, renumber densely. ---------------------------------------
  // First, merged tags: two same-block (loc, tag) nodes collapse into one.
  std::vector<bool> block_used(num_tags, false);
  for (uint32_t tag : graph.node_tags_) block_used[block[tag]] = true;
  for (uint32_t t : graph.origin_tags_) {
    if (t != kInvalidTag) block_used[block[t]] = true;
  }

  std::vector<uint32_t> block_to_new(num_tags, kInvalidTag);
  uint32_t next_id = 0;
  for (uint32_t t = 0; t < num_tags; ++t) {
    const uint32_t b = block[t];
    if (block_used[b] && block_to_new[b] == kInvalidTag) block_to_new[b] = next_id++;
  }
  auto remap = [&](uint32_t tag) -> uint32_t {
    return tag == kInvalidTag ? kInvalidTag : block_to_new[block[tag]];
  };

  // Rebuild tag tables under the new numbering. A representative old tag per
  // new tag supplies the rows (all members agree by bisimulation).
  std::vector<uint32_t> representative(next_id, kInvalidTag);
  for (uint32_t t = 0; t < num_tags; ++t) {
    const uint32_t nt = remap(t);
    if (nt != kInvalidTag && representative[nt] == kInvalidTag) representative[nt] = t;
  }

  std::vector<std::vector<uint32_t>> new_trans(next_id);
  std::vector<std::vector<bool>> new_accepting(next_id);
  std::vector<bool> new_finite(next_id);
  for (uint32_t nt = 0; nt < next_id; ++nt) {
    const uint32_t rep = representative[nt];
    new_accepting[nt] = graph.accepting_[rep];
    new_finite[nt] = graph.possibly_finite_[rep];
    new_trans[nt].resize(num_locations);
    for (uint32_t loc = 0; loc < num_locations; ++loc) {
      // Transition targets may fall in unused blocks (paths pruning removed);
      // map them to kInvalidTag — next_tag() treats that as "no PG node".
      const uint32_t target = graph.tag_trans_[rep][loc];
      const uint32_t mapped = block_used[block[target]] ? remap(target) : kInvalidTag;
      new_trans[nt][loc] = mapped;
    }
  }
  graph.tag_trans_ = std::move(new_trans);
  graph.accepting_ = std::move(new_accepting);
  graph.possibly_finite_ = std::move(new_finite);

  for (uint32_t& t : graph.origin_tags_) t = remap(t);

  // Remap virtual nodes, deduplicating (loc, tag) pairs merged by the
  // bisimulation, and union their edges.
  std::map<std::pair<topology::NodeId, uint32_t>, uint32_t> dedup;
  std::vector<topology::NodeId> locs;
  std::vector<uint32_t> tags;
  std::vector<std::vector<PgEdge>> edges;
  std::vector<uint32_t> node_remap(graph.node_locs_.size());
  for (uint32_t i = 0; i < graph.node_locs_.size(); ++i) {
    const auto key = std::make_pair(graph.node_locs_[i], remap(graph.node_tags_[i]));
    auto [it, inserted] = dedup.emplace(key, static_cast<uint32_t>(locs.size()));
    if (inserted) {
      locs.push_back(key.first);
      tags.push_back(key.second);
      edges.emplace_back();
    }
    node_remap[i] = it->second;
  }
  for (uint32_t i = 0; i < graph.node_locs_.size(); ++i) {
    for (const PgEdge& e : graph.out_edges_[i]) {
      PgEdge mapped{e.to, remap(e.to_tag), e.link};
      auto& bucket = edges[node_remap[i]];
      bool present = false;
      for (const PgEdge& existing : bucket) {
        present = present || (existing.to == mapped.to && existing.to_tag == mapped.to_tag &&
                              existing.link == mapped.link);
      }
      if (!present) bucket.push_back(mapped);
    }
  }
  graph.node_locs_ = std::move(locs);
  graph.node_tags_ = std::move(tags);
  graph.out_edges_ = std::move(edges);
  graph.rebuild_node_index();
}

}  // namespace contra::pg
