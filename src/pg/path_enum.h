// Offline enumeration of policy-compliant paths from the product graph —
// the "what-if" companion to the runtime protocol. Network operators use it
// to audit a policy before deployment: which paths can traffic between two
// switches legally take, and how are they ranked under static metrics?
//
// Paths are walked along reversed PG edges (probe direction is destination
// -> source, traffic is the reverse), so a result is a traffic-direction
// switch sequence ending at the destination whose final tag can produce a
// finite rank.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/decompose.h"
#include "lang/rank.h"
#include "pg/policy_eval.h"
#include "pg/product_graph.h"

namespace contra::pg {

struct EnumeratedPath {
  std::vector<topology::NodeId> nodes;  ///< source first, destination last
  uint32_t source_tag = kInvalidTag;    ///< PG tag at the source (for s())
  /// Rank under the policy with static metrics (util 0, lat from link
  /// delays in microseconds, len = hops).
  lang::Rank static_rank;
};

struct PathEnumOptions {
  size_t max_paths = 64;   ///< stop after this many results
  size_t max_hops = 16;    ///< bound walk depth (PG paths may revisit switches)
  bool simple_only = true; ///< restrict to physically loop-free paths
};

/// All policy-compliant paths src -> dst (up to the limits), sorted by
/// static rank (best first). Empty when the policy forbids the pair.
std::vector<EnumeratedPath> enumerate_policy_paths(const ProductGraph& graph,
                                                   const PolicyEvaluator& evaluator,
                                                   const analysis::Decomposition& decomposition,
                                                   topology::NodeId src, topology::NodeId dst,
                                                   PathEnumOptions options = {});

/// Human-readable rendering ("A -> B -> D  rank=0").
std::string format_paths(const ProductGraph& graph, const std::vector<EnumeratedPath>& paths);

}  // namespace contra::pg
