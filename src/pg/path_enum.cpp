#include "pg/path_enum.h"

#include <algorithm>
#include <sstream>

namespace contra::pg {

namespace {

struct Walker {
  const ProductGraph& graph;
  const PolicyEvaluator& evaluator;
  topology::NodeId src;
  PathEnumOptions options;

  std::vector<topology::NodeId> stack;  ///< probe direction: dst ... current
  std::vector<bool> visited;
  std::vector<EnumeratedPath> results;

  void walk(uint32_t pg_node, const MetricsVector& mv) {
    if (results.size() >= options.max_paths) return;
    const topology::NodeId here = graph.node_location(pg_node);
    const uint32_t tag = graph.node_tag(pg_node);

    if (here == src && stack.size() > 1) {
      const lang::Rank rank = evaluator.selection_rank(tag, mv);
      if (!rank.is_infinite()) {
        EnumeratedPath path;
        path.nodes.assign(stack.rbegin(), stack.rend());  // traffic direction
        path.source_tag = tag;
        path.static_rank = rank;
        results.push_back(std::move(path));
      }
      if (options.simple_only) return;  // nothing past src can re-reach it
    }
    if (stack.size() > options.max_hops) return;

    for (const PgEdge& edge : graph.out_edges(pg_node)) {
      if (options.simple_only && visited[edge.to]) continue;
      const uint32_t next = graph.node_index(edge.to, edge.to_tag);
      if (next == kInvalidPgNode) continue;
      MetricsVector extended = mv;
      extended.extend(0.0, graph.topo().link(edge.link).delay_s * 1e6);
      visited[edge.to] = true;
      stack.push_back(edge.to);
      walk(next, extended);
      stack.pop_back();
      visited[edge.to] = false;
      if (results.size() >= options.max_paths) return;
    }
  }
};

}  // namespace

std::vector<EnumeratedPath> enumerate_policy_paths(const ProductGraph& graph,
                                                   const PolicyEvaluator& evaluator,
                                                   const analysis::Decomposition& decomposition,
                                                   topology::NodeId src, topology::NodeId dst,
                                                   PathEnumOptions options) {
  (void)decomposition;
  std::vector<EnumeratedPath> empty;
  if (src == dst) return empty;
  const uint32_t origin_tag = graph.origin_tag(dst);
  if (origin_tag == kInvalidTag) return empty;  // dst forbidden as destination
  const uint32_t start = graph.node_index(dst, origin_tag);
  if (start == kInvalidPgNode) return empty;

  Walker walker{graph, evaluator, src, options, {}, {}, {}};
  walker.visited.assign(graph.topo().num_nodes(), false);
  walker.visited[dst] = true;
  walker.stack.push_back(dst);
  walker.walk(start, MetricsVector{});

  std::sort(walker.results.begin(), walker.results.end(),
            [](const EnumeratedPath& a, const EnumeratedPath& b) {
              if (a.static_rank != b.static_rank) return a.static_rank < b.static_rank;
              return a.nodes < b.nodes;  // deterministic tie order
            });
  return walker.results;
}

std::string format_paths(const ProductGraph& graph, const std::vector<EnumeratedPath>& paths) {
  std::ostringstream out;
  for (const EnumeratedPath& path : paths) {
    for (size_t i = 0; i < path.nodes.size(); ++i) {
      if (i) out << " -> ";
      out << graph.topo().name(path.nodes[i]);
    }
    out << "  rank=" << path.static_rank.to_string() << "\n";
  }
  return out.str();
}

}  // namespace contra::pg
