#include "pg/product_graph.h"

#include <deque>
#include <map>
#include <sstream>

#include "pg/prune.h"
#include "pg/tag_minimize.h"
#include "util/logging.h"

namespace contra::pg {

namespace {

uint64_t node_key(topology::NodeId loc, uint32_t tag) {
  return (static_cast<uint64_t>(loc) << 32) | tag;
}

}  // namespace

/// Phase 1 of ProductGraph::build: automata construction, tag interning, and
/// BFS from every probe-sending state. Produces the unpruned graph.
ProductGraph build_unpruned(const topology::Topology& topo,
                            const analysis::Decomposition& decomposition) {
  ProductGraph graph;
  graph.topo_ = &topo;
  graph.regexes_ = lang::collect_regexes(decomposition.original);
  graph.num_regexes_ = static_cast<uint32_t>(graph.regexes_.size());

  // Alphabet symbol id == topology NodeId by construction.
  const automata::Alphabet alphabet(topo.node_names());

  // One minimal total DFA per *reversed* regex (§4.1: probes travel opposite
  // to traffic).
  std::vector<automata::Dfa> dfas;
  dfas.reserve(graph.num_regexes_);
  for (const auto& regex : graph.regexes_) {
    dfas.push_back(automata::compile_regex(lang::Regex::reverse(regex), alphabet));
  }

  // Tag interning: automaton state vector -> dense tag id. Rows of the tag
  // transition table are filled as tags are created (worklist closure over
  // the full product automaton, which is small: a product of minimal DFAs).
  std::map<std::vector<uint32_t>, uint32_t> tag_ids;
  std::vector<std::vector<uint32_t>> tag_vectors;
  std::deque<uint32_t> tag_worklist;

  auto intern = [&](const std::vector<uint32_t>& vec) -> uint32_t {
    auto [it, inserted] = tag_ids.emplace(vec, static_cast<uint32_t>(tag_vectors.size()));
    if (inserted) {
      tag_vectors.push_back(vec);
      tag_worklist.push_back(it->second);
    }
    return it->second;
  };

  auto step_vector = [&](const std::vector<uint32_t>& vec,
                         topology::NodeId to) -> std::vector<uint32_t> {
    std::vector<uint32_t> next(vec.size());
    for (uint32_t i = 0; i < vec.size(); ++i) next[i] = dfas[i].next(vec[i], to);
    return next;
  };

  // Seed with every destination's probe-sending tag: the origin has already
  // "traversed" itself from the automata start states.
  graph.origin_tags_.assign(topo.num_nodes(), kInvalidTag);
  std::vector<uint32_t> start_vec(graph.num_regexes_);
  for (uint32_t i = 0; i < graph.num_regexes_; ++i) start_vec[i] = dfas[i].start();
  for (topology::NodeId d = 0; d < topo.num_nodes(); ++d) {
    graph.origin_tags_[d] = intern(step_vector(start_vec, d));
  }

  // Close the tag table.
  while (!tag_worklist.empty()) {
    const uint32_t tag = tag_worklist.front();
    tag_worklist.pop_front();
    if (graph.tag_trans_.size() <= tag) graph.tag_trans_.resize(tag + 1);
    auto& row = graph.tag_trans_[tag];
    row.assign(topo.num_nodes(), kInvalidTag);
    const std::vector<uint32_t> vec = tag_vectors[tag];  // copy: interning reallocates
    for (topology::NodeId to = 0; to < topo.num_nodes(); ++to) {
      row[to] = intern(step_vector(vec, to));
    }
  }

  // Acceptance bits per tag.
  graph.accepting_.resize(tag_vectors.size());
  for (uint32_t t = 0; t < tag_vectors.size(); ++t) {
    graph.accepting_[t].assign(graph.num_regexes_, false);
    for (uint32_t i = 0; i < graph.num_regexes_; ++i) {
      graph.accepting_[t][i] = dfas[i].accepting(tag_vectors[t][i]);
    }
  }

  // Possible finiteness per tag: with regex tests pinned by the tag's
  // acceptance bits, is there any dynamic-test outcome that yields a finite
  // rank? (Determines which virtual nodes can ever justify traffic.)
  const auto atoms = analysis::collect_atomic_tests(decomposition.original);
  std::vector<size_t> dynamic_atoms;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (atoms[i]->kind == lang::BoolTest::Kind::kCompare) dynamic_atoms.push_back(i);
  }
  auto regex_index = [&](const lang::RegexPtr& r) -> uint32_t {
    for (uint32_t i = 0; i < graph.num_regexes_; ++i) {
      if (lang::Regex::equal(*graph.regexes_[i], *r)) return i;
    }
    return UINT32_MAX;
  };

  graph.possibly_finite_.assign(tag_vectors.size(), false);
  for (uint32_t t = 0; t < tag_vectors.size(); ++t) {
    std::vector<bool> assignment(atoms.size(), false);
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (atoms[i]->kind == lang::BoolTest::Kind::kRegex) {
        assignment[i] = graph.accepting_[t][regex_index(atoms[i]->regex)];
      }
    }
    const size_t combos = size_t{1} << dynamic_atoms.size();
    for (size_t mask = 0; mask < combos && !graph.possibly_finite_[t]; ++mask) {
      for (size_t b = 0; b < dynamic_atoms.size(); ++b) {
        assignment[dynamic_atoms[b]] = (mask >> b) & 1;
      }
      const lang::ExprPtr resolved = analysis::normalize_metric(
          analysis::resolve_tests(decomposition.original.objective, atoms, assignment));
      if (!analysis::is_infinite_metric(resolved)) graph.possibly_finite_[t] = true;
    }
  }

  // BFS over virtual nodes from every probe-sending state.
  auto add_node = [&](topology::NodeId loc, uint32_t tag) -> uint32_t {
    const uint64_t key = node_key(loc, tag);
    auto it = graph.node_index_.find(key);
    if (it != graph.node_index_.end()) return it->second;
    const uint32_t idx = static_cast<uint32_t>(graph.node_locs_.size());
    graph.node_index_.emplace(key, idx);
    graph.node_locs_.push_back(loc);
    graph.node_tags_.push_back(tag);
    graph.out_edges_.emplace_back();
    return idx;
  };

  std::deque<uint32_t> frontier;
  for (topology::NodeId d = 0; d < topo.num_nodes(); ++d) {
    frontier.push_back(add_node(d, graph.origin_tags_[d]));
  }
  for (size_t head = 0; head < frontier.size(); ++head) {
    const uint32_t idx = frontier[head];
    const topology::NodeId loc = graph.node_locs_[idx];
    const uint32_t tag = graph.node_tags_[idx];
    for (topology::LinkId l : topo.out_links(loc)) {
      const topology::NodeId to = topo.link(l).to;
      const uint32_t to_tag = graph.tag_trans_[tag][to];
      const bool is_new = !graph.node_index_.count(node_key(to, to_tag));
      const uint32_t to_idx = add_node(to, to_tag);
      graph.out_edges_[idx].push_back(PgEdge{to, to_tag, l});
      if (is_new) frontier.push_back(to_idx);
    }
  }

  graph.nodes_at_.assign(topo.num_nodes(), {});
  for (uint32_t i = 0; i < graph.node_locs_.size(); ++i) {
    graph.nodes_at_[graph.node_locs_[i]].push_back(i);
  }
  return graph;
}

ProductGraph ProductGraph::build(const topology::Topology& topo,
                                 const analysis::Decomposition& decomposition) {
  ProductGraph graph = build_unpruned(topo, decomposition);
  const uint32_t before_nodes = graph.num_nodes();
  prune_useless(graph);
  minimize_tags(graph, decomposition);
  LOG_DEBUG("pg") << "built PG: " << graph.num_nodes() << " nodes (" << before_nodes
                  << " pre-prune), " << graph.num_tags() << " tags, " << graph.num_edges()
                  << " edges";
  return graph;
}

uint32_t ProductGraph::num_edges() const {
  uint32_t n = 0;
  for (const auto& edges : out_edges_) n += static_cast<uint32_t>(edges.size());
  return n;
}

uint32_t ProductGraph::tag_bits() const {
  const uint32_t tags = num_tags();
  uint32_t bits = 1;
  while ((1u << bits) < tags) ++bits;
  return bits;
}

uint32_t ProductGraph::next_tag(uint32_t tag, topology::NodeId to) const {
  if (tag >= tag_trans_.size()) return kInvalidTag;
  const uint32_t t = tag_trans_[tag][to];
  if (t == kInvalidTag || !node_exists(to, t)) return kInvalidTag;
  return t;
}

uint32_t ProductGraph::node_index(topology::NodeId loc, uint32_t tag) const {
  auto it = node_index_.find(node_key(loc, tag));
  return it == node_index_.end() ? kInvalidPgNode : it->second;
}

void ProductGraph::rebuild_node_index() {
  node_index_.clear();
  nodes_at_.assign(topo_->num_nodes(), {});
  for (uint32_t i = 0; i < node_locs_.size(); ++i) {
    node_index_.emplace(node_key(node_locs_[i], node_tags_[i]), i);
    nodes_at_[node_locs_[i]].push_back(i);
  }
}

std::string ProductGraph::to_string() const {
  std::ostringstream out;
  out << "ProductGraph: " << num_nodes() << " nodes, " << num_tags() << " tags, " << num_edges()
      << " edges\n";
  for (uint32_t i = 0; i < node_locs_.size(); ++i) {
    out << "  (" << topo_->name(node_locs_[i]) << ", t" << node_tags_[i] << ")";
    const auto& acc = accepting_[node_tags_[i]];
    out << " accepts={";
    for (size_t r = 0; r < acc.size(); ++r) out << (acc[r] ? '1' : '0');
    out << "} ->";
    for (const PgEdge& e : out_edges_[i]) {
      out << " (" << topo_->name(e.to) << ",t" << e.to_tag << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace contra::pg
