// PG pruning: drop virtual nodes that cannot contribute a policy-compliant,
// finite-rank path (paper §4.1 "prunes invalid transitions").
//
// A virtual node is *useful* when, following PG edges (probe direction), it
// can reach some node whose tag may yield a finite rank — i.e. a probe
// passing through it might eventually inform a source of a usable path.
// Nodes that are merely transient automaton progress (e.g. "waypoint not yet
// crossed") are kept; nodes in all-garbage automaton states under a
// forbidding policy are removed, which also stops probe multicast along
// pointless edges (protocol efficiency).
#pragma once

namespace contra::pg {

class ProductGraph;

/// In-place: removes useless nodes and their edges; destinations whose
/// probe-sending node was pruned get origin_tag = kInvalidTag.
void prune_useless(ProductGraph& graph);

}  // namespace contra::pg
