// Shortest-path baseline ("SP" in §6.4): every packet follows the single
// deterministic shortest path. No load awareness, no multipath.
#pragma once

#include <memory>

#include "dataplane/ecmp_switch.h"
#include "dataplane/routing_tables.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace contra::dataplane {

class StaticSwitch : public sim::Device {
 public:
  using Table = std::vector<std::vector<topology::LinkId>>;

  StaticSwitch(std::shared_ptr<const Table> table, topology::NodeId self)
      : table_(std::move(table)), self_(self) {}

  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  topology::LinkId fluid_next_hop(sim::Simulator& sim, topology::NodeId dst_switch,
                                  const util::FiveTuple& tuple,
                                  sim::RoutingState& routing) override {
    (void)sim;
    (void)tuple;
    (void)routing;
    return (*table_)[self_][dst_switch];
  }
  const char* kind_name() const override { return "shortest-path"; }

  const BaselineStats& stats() const { return stats_; }

 private:
  std::shared_ptr<const Table> table_;
  topology::NodeId self_;
  BaselineStats stats_;
};

std::vector<StaticSwitch*> install_shortest_path_network(sim::Simulator& sim);

}  // namespace contra::dataplane
