#include "dataplane/probe_engine.h"

// Header-only components; this TU anchors the module in the build.
namespace contra::dataplane {}
