// The Contra switch dataplane: the executable semantics of the generated
// per-switch P4 programs (paper §4.2-§5.5).
//
// Implements, per the paper's final refinement stack:
//   * PROCESSPROBE with versioned probes (§4.3 + §5.1): per-(dst, tag, pid)
//     FwdT entries store the metrics vector, next tag, next hop, and probe
//     version; older versions are discarded, newer versions always adopted,
//     same-version probes adopted only when they improve f(pid, mv);
//   * INITPROBE/MULTICASTPROBE probe origination at valid destinations, one
//     probe per PG out-edge link per round;
//   * SWIFORWARDPKT with BestT source selection (the s() rank over all
//     (tag, pid) candidates of the destination);
//   * policy-aware flowlet switching keyed by (tag, pid, fid) (§5.3);
//   * probe-silence failure detection + flowlet/metric expiration (§5.4);
//   * lazy transient-loop breaking via the TTL-spread table (§5.5).
//
// The ablation flags in ContraSwitchOptions turn individual refinements off
// so experiments can demonstrate why each exists.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/flowlet_table.h"
#include "dataplane/loop_detector.h"
#include "dataplane/probe_engine.h"
#include "pg/policy_eval.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace contra::dataplane {

struct ContraSwitchOptions {
  double probe_period_s = 256e-6;
  double flowlet_timeout_s = 200e-6;
  /// Probe-silence multiplier: link presumed failed after this many periods.
  double failure_detect_periods = 3.0;
  /// FwdT entries older than this many periods rank as unusable (§5.4
  /// metric expiration).
  double metric_expiry_periods = 12.0;
  uint8_t loop_ttl_threshold = 6;
  uint32_t loop_table_slots = 256;
  uint32_t probe_base_bytes = 64;
  /// Utilization is quantized to this step when written into probe metrics,
  /// mirroring the few-bit utilization registers of switch ASICs. Coarse
  /// steps make near-equal paths tie so the length tie-break keeps traffic
  /// on shortest paths unless congestion differences are real — without it,
  /// measurement noise steers flows onto arbitrarily long "less utilized"
  /// paths and inflates total traffic.
  double util_quantum = 1.0 / 64;
  /// Extra wire bytes data packets carry for the (tag, pid) header — added
  /// when the first switch stamps the packet, so Fig. 16's overhead includes
  /// tag bytes physically.
  uint32_t tag_overhead_bytes = 2;

  // Ablation knobs (each defaults to the paper's final design).
  bool versioned_probes = true;      ///< §5.1 off => classic distance-vector
  bool policy_aware_flowlets = true; ///< §5.3 off => flowlet key ignores tag/pid
  bool loop_detection = true;        ///< §5.5 off => no lazy loop breaking

  /// Version-reset detection (DSDV-style sequence recovery): a probe whose
  /// version regressed is normally dropped (§5.1), but when the stored entry
  /// has gone this many periods without an *accepted* refresh, the
  /// regression is read as an origin restart and the probe is adopted.
  /// Without it, a destination whose probe clock restarts (device reboot
  /// after a failure) is ignored forever. <= 0 disables the escape hatch.
  double version_reset_periods = 3.0;

  /// Probe delta-suppression (§5.2 semantics on the dense tables): an
  /// accepted probe whose quantized advertisement — mv as carried (util is
  /// already register-quantized, latency via suppress_lat_quantum_us), next
  /// tag, next hop — matches what this switch last re-broadcast for the row
  /// is not re-flooded. Refresh rounds (below) re-announce unconditionally,
  /// which keeps downstream failure detectors and metric expiry fed and pins
  /// the fixed point to the unsuppressed protocol's: on a refresh round every
  /// switch runs exactly the legacy propagate rule, so the steady-state
  /// winner per row is decided by the same comparisons in the same order.
  /// Requires versioned_probes (rounds are identified by the carried
  /// version); ignored under the classic distance-vector ablation.
  bool probe_suppression = true;
  /// Refresh cadence: origin rounds whose version is a multiple of this
  /// value propagate under the unsuppressed rule. Must stay below
  /// failure_detect_periods (default 3) so probe silence on a healthy path
  /// never crosses the failure threshold between refreshes. <= 1 makes every
  /// round a refresh round, i.e. disables suppression.
  uint32_t suppress_refresh_rounds = 2;
  /// Advertised-latency deltas below this many microseconds do not count as
  /// a change. Latency is propagation-only (see process_probe), so any real
  /// path change moves it by at least one link delay; the quantum only
  /// absorbs float noise.
  double suppress_lat_quantum_us = 0.25;

  /// Triggered-update mode (DESIGN.md §12): probes are emitted only when a
  /// row's advertisement *changes* — accepted delta, next-hop move, local
  /// link state or quantized-utilization drift — plus a low-rate keepalive
  /// flood every keepalive_rounds periods as the liveness backstop. Failure
  /// detection, metric expiry, and version-reset staleness windows scale by
  /// keepalive_rounds (silence between keepalives is the healthy state).
  /// Fixed points match the periodic protocol for strictly monotonic
  /// policies (keepalive rounds replay the legacy propagate rule; see the
  /// Daggitt–Griffin argument in DESIGN.md §12) — enforced by
  /// contrafuzz --cross-check-triggered. Requires versioned_probes.
  bool triggered_updates = false;
  /// Keepalive cadence: origin rounds whose version ≡ 1 (mod this) flood
  /// under the unsuppressed legacy rule. Larger = less steady-state control
  /// traffic, slower worst-case resync after recovery. <= 1 floods every
  /// round (triggered mode degenerates to the periodic protocol).
  uint32_t keepalive_rounds = 32;
  /// Per-(switch,dst) hold-down: after a triggered emission for a
  /// destination, further triggers for it are deferred this many probe
  /// periods and coalesced (trailing-edge flush at the next control tick
  /// after expiry, so the final state always propagates). Damps metric
  /// oscillation into at most one wave per hold-down window.
  double holddown_periods = 4.0;

  /// Test-only: shadow the dense tables with the PR 4 hash-map tables so
  /// check_reference_parity() can cross-check them (contrafuzz
  /// --cross-check). Allocates per entry — never enable in benchmarks.
  bool reference_tables = false;
  /// Test-only: lets the out-of-universe probe fallback be exercised without
  /// tripping the debug assert that guards it in real runs.
  bool assert_on_dense_fallback = true;

  /// When this switch is one protocol instance of a classified policy, the
  /// rule index it serves; stamped into probes and data it sources.
  uint32_t traffic_class_id = 0;
};

struct ContraSwitchStats {
  uint64_t probes_originated = 0;
  uint64_t probes_received = 0;
  uint64_t probes_propagated = 0;
  uint64_t probes_dropped_version = 0;
  uint64_t probes_dropped_worse = 0;
  uint64_t probes_dropped_no_pg = 0;
  uint64_t probes_suppressed = 0;    ///< accepted but not re-broadcast (delta-suppression)
  uint64_t dense_fallback_hits = 0;  ///< probe keys outside the compiled dense universe
  uint64_t probes_triggered = 0;     ///< probe copies sent by triggered emissions (§12)
  uint64_t probes_holddown_deferred = 0;  ///< trigger requests parked by hold-down
  uint64_t keepalive_probes = 0;     ///< probes received on keepalive refresh rounds
  uint64_t probes_withdrawn = 0;     ///< poison (withdraw) advert copies sent
  uint64_t fwdt_updates = 0;
  uint64_t data_forwarded = 0;
  uint64_t data_to_host = 0;
  uint64_t data_dropped_no_route = 0;
  uint64_t data_dropped_ttl = 0;
  uint64_t loops_broken = 0;
  uint64_t looped_packets_seen = 0;  ///< exact revisit count (§6.5 metric)
};

class ContraSwitch : public sim::Device {
 public:
  /// `compiled` and `evaluator` are shared across all switches of a network
  /// (they are the common protocol configuration); `self` selects this
  /// switch's slice.
  ContraSwitch(const compiler::CompileResult& compiled, const pg::PolicyEvaluator& evaluator,
               topology::NodeId self, ContraSwitchOptions options = {});

  void start(sim::Simulator& sim) override;
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  /// Port signal (triggered mode only): instant failure presumption +
  /// focused trigger wave on down, advert resync + origin re-announce on up.
  void handle_link_state(sim::Simulator& sim, topology::LinkId link, bool up) override;
  /// Hybrid engine route query (DESIGN.md §14): forward_data's selection
  /// logic with every side effect removed — reads source pins, flowlets and
  /// FwdT state but never pins, touches, flushes, or counts.
  topology::LinkId fluid_next_hop(sim::Simulator& sim, topology::NodeId dst_switch,
                                  const util::FiveTuple& tuple,
                                  sim::RoutingState& routing) override;
  const char* kind_name() const override { return "contra"; }

  const ContraSwitchStats& stats() const { return stats_; }
  const FlowletStats& flowlet_stats() const { return flowlets_.stats(); }
  topology::NodeId node_id() const { return self_; }

  /// Simulates a control-plane reboot (churn engine §13): the probe clock
  /// restarts from zero — subsequent rounds carry *lower* versions than
  /// neighbors have stored, the regression scenario version_reset_periods
  /// covers — and all soft protocol state (FwdT rows, triggered-engine
  /// bookkeeping) is lost. The per-row advert ledger survives just long
  /// enough to be replayed: every destination slot is marked pending, so the
  /// next control tick floods a keepalive-equivalent resync in which rows
  /// the reborn RIB no longer holds are withdrawn at their last-advertised
  /// version. Without that replay the stale AdvertState caches would
  /// suppress the resync entirely and neighbors would route through the
  /// amnesiac switch until metric expiry.
  void restart_control_plane() override;

  // ----- introspection for tests and convergence checks -------------------

  struct FwdEntry {
    pg::MetricsVector mv;
    uint32_t ntag = 0;
    topology::LinkId nhop = topology::kInvalidLink;
    uint64_t version = 0;
    sim::Time updated_at = 0.0;
    /// f(pid, mv) of the stored metrics, cached at write time so comparing
    /// an incoming probe against the entry costs one rank evaluation, not
    /// two. propagation_rank is pure, so the cache can never go stale.
    lang::Rank rank;
    /// Triggered mode: a poison advert marked this row unusable until a
    /// probe with version >= the stored one resurrects it (§12).
    bool withdrawn = false;
  };

  /// Entry for (traffic destination, local tag, pid), or nullptr.
  const FwdEntry* fwd_entry(topology::NodeId dst, uint32_t tag, uint32_t pid) const;

  /// Whether an entry currently counts for forwarding: not metric-expired
  /// (§5.4) and its next hop not presumed failed. Exposed for the invariant
  /// checker (src/oracle), which must skip entries the dataplane skips.
  bool entry_usable(const FwdEntry& entry, sim::Time now) const;

  /// Invariant-checker hook: visits every FwdT entry as
  /// fn(dst, local_tag, pid, entry). The dense layout makes the order
  /// deterministic — ascending (dst, tag, pid) — but callers should not rely
  /// on it (the contract predates the dense tables).
  template <typename Fn>
  void for_each_fwd_entry(Fn&& fn) const {
    topology::NodeId dst = topology::kInvalidNode;
    uint32_t tag = 0, pid = 0;
    for (uint32_t r = 0; r < rows_.size(); ++r) {
      if (!row_present_[r]) continue;
      dense_->key_of(r, dst, tag, pid);
      fn(dst, tag, pid, rows_[r]);
    }
  }

  struct BestChoice {
    uint32_t tag = 0;
    uint32_t pid = 0;
    lang::Rank rank;
    topology::LinkId nhop = topology::kInvalidLink;
  };
  /// The s()-best candidate for a destination right now (BestT semantics),
  /// skipping expired entries and presumed-failed next hops.
  std::optional<BestChoice> best_choice(topology::NodeId dst, sim::Time now) const;

  /// Current size of the loop-accounting window (bounded by
  /// kRecentPacketsCap; test hook).
  size_t recent_packet_window_size() const { return recent_packets_.size(); }

  /// Hard cap on the loop-accounting window: reaching it restarts the
  /// window, exactly like the periodic reset, so the map cannot grow without
  /// bound on long runs with many distinct packets.
  static constexpr size_t kRecentPacketsCap = 1u << 16;

  /// Renders FwdT + BestT in the paper's Fig. 6e layout:
  ///   [dst, tag, pid] -> mv, ntag, nhop, version   (* marks BestT's pick)
  std::string render_tables(sim::Time now) const;

  /// Test-only (requires options.reference_tables): cross-checks the dense
  /// FwdT rows and the per-destination BestT scans against the shadow
  /// hash-map tables. Returns "" when they agree, else a description of the
  /// first divergence.
  std::string check_reference_parity(sim::Time now) const;

 private:
  struct FwdKey {
    topology::NodeId origin;  ///< traffic destination / probe origin
    uint32_t tag;
    uint32_t pid;
    friend bool operator==(const FwdKey&, const FwdKey&) = default;
  };
  struct FwdKeyHash {
    size_t operator()(const FwdKey& k) const {
      return static_cast<size_t>(
          util::hash_combine(util::hash_combine(k.origin, k.tag), k.pid));
    }
  };

  void originate_probes(sim::Simulator& sim);
  void process_probe(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);
  void forward_data(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);

  // ----- triggered-update engine (DESIGN.md §12) ---------------------------

  /// Whether the triggered engine is live (requires versioned probes).
  bool triggered() const { return options_.triggered_updates && options_.versioned_probes; }
  /// Number of probe periods a protocol timing window spans: triggered mode
  /// stretches failure detection / metric expiry / version-reset staleness
  /// by the keepalive cadence (between keepalives, silence is healthy).
  double window_scale() const {
    return triggered() && options_.keepalive_rounds > 1
               ? static_cast<double>(options_.keepalive_rounds)
               : 1.0;
  }
  /// Is `version` a keepalive (full legacy flood) round in triggered mode?
  bool keepalive_version(uint64_t version) const {
    return options_.keepalive_rounds <= 1 || version % options_.keepalive_rounds == 1;
  }
  /// One flood of this destination's probes at `version` (the legacy
  /// origination body; both the periodic clock and keepalives call it).
  void emit_origin_round(sim::Simulator& sim, uint64_t version);
  /// Per-period timer of triggered mode, on every switch: advance the origin
  /// clock / emit keepalives, scan local link + utilization state for
  /// changes, and flush hold-down-deferred triggers (trailing edge).
  void control_tick(sim::Simulator& sim);
  /// Detect probe-silence transitions and quantized-utilization drift on
  /// this switch's own out-links; affected rows are recomputed and their
  /// destinations marked pending.
  void scan_local_changes(sim::Simulator& sim);
  /// A local link's probe direction flipped alive/dead: mark every
  /// destination routed over `traffic_link` pending (emit_deltas will
  /// re-advertise or poison as entry_usable dictates).
  void on_link_transition(sim::Simulator& sim, topology::LinkId traffic_link, bool alive);
  /// Mark a destination slot dirty; respects + counts hold-down deferral.
  void request_trigger(uint32_t slot, sim::Time now);
  /// Emit deltas for every pending destination whose hold-down expired.
  void flush_pending(sim::Simulator& sim);
  /// Diff a destination's rows against their standing advertisements and
  /// send only the changes: re-adverts for changed usable rows, withdraw
  /// poison for rows whose standing advert is no longer usable. Returns the
  /// number of probe copies sent (0 = nothing changed, hold-down not armed).
  uint32_t emit_deltas(sim::Simulator& sim, uint32_t slot);
  /// Link recovery: re-send this switch's current usable adverts over PG
  /// out-edges that traverse `traffic_link`, so the revived neighbor
  /// relearns state now instead of at the next keepalive.
  void resync_link(sim::Simulator& sim, topology::LinkId traffic_link);
  /// Sends one advert (or withdraw) probe for a row along its PG out-edges,
  /// skipping the pure back-edge. Returns copies sent.
  uint32_t send_row_advert(sim::Simulator& sim, topology::NodeId dst, uint32_t local_tag,
                           uint32_t pid, const FwdEntry& entry, bool withdraw,
                           topology::LinkId only_link = topology::kInvalidLink);

  double quantize_advert_lat(double lat) const {
    const double q = options_.suppress_lat_quantum_us;
    return q > 0 ? std::round(lat / q) * q : lat;
  }

  uint32_t probe_wire_bytes() const;

  /// Wires this switch, its flowlet table, loop detector, and failure
  /// detector to the simulator's telemetry hub.
  void bind_telemetry(sim::Simulator& sim);
  /// Emits a probe-lifecycle trace record (sw/dst/tag/pid/version from the
  /// probe, value = carried path length). Caller checks tracing().
  void trace_probe(obs::Ev ev, const sim::ProbeFields& probe, double t,
                   uint32_t aux = obs::kNoField);
  /// Tracing-only: recompute BestT for `dst` and emit kRouteFlip when its
  /// next hop moved since the last accepted probe for that destination.
  void note_route_flip(topology::NodeId dst, sim::Time now);

  const compiler::CompileResult* compiled_;
  const pg::PolicyEvaluator* evaluator_;
  topology::NodeId self_;
  ContraSwitchOptions options_;
  /// True when the compiled policy references path.util anywhere. When it
  /// does not, probes are extended with util = 0 instead of the live EWMA:
  /// the value can never affect any rank, but carrying it would still make
  /// every content/advert comparison drift with traffic — under the
  /// triggered engine that noise alone re-excites fabric-wide trigger waves
  /// every period (a probe storm a util-blind policy has no reason to pay).
  bool policy_carries_util_ = true;

  /// This switch's slice of the compiled dense addressing (owned by
  /// compiled_; cached to skip the double indirection on every packet).
  const compiler::DenseFwdIndex* dense_;
  /// Probe-path PG lookups densified per switch so the hot path never
  /// hashes: carried tag -> local tag (NEXTPGNODE, kInvalidTag when there is
  /// no transition) and local tag -> PG node index for the multicast fan-out
  /// (kInvalidPgNode when the tag does not live here). Both are pure
  /// compiled data, flattened from the ProductGraph in the constructor.
  std::vector<uint32_t> tag_step_;
  std::vector<uint32_t> pg_node_of_tag_;
  /// FwdT as a flat register array: one row per compiled (dst, tag, pid),
  /// preallocated in the constructor — probe updates index in O(1) and never
  /// allocate, BestT scans walk one contiguous per-destination slice.
  std::vector<FwdEntry> rows_;
  /// 1 = the row has been written (the register-array "valid" bit).
  std::vector<uint8_t> row_present_;

  /// What this switch last re-broadcast per row, quantized — the comparand
  /// for probe delta-suppression, and the ledger restart_control_plane
  /// replays (withdrawing rows the reborn RIB no longer holds). Written only
  /// when a probe propagates.
  struct AdvertState {
    double util = 0.0;  ///< carried quantized (util_quantum)
    double lat = 0.0;   ///< quantized to suppress_lat_quantum_us
    double len = 0.0;
    uint32_t ntag = 0;
    topology::LinkId nhop = topology::kInvalidLink;
    /// Version the advert carried. A post-restart withdraw of a vanished row
    /// must quote it: receivers version-guard poison, and the reborn clock
    /// holds nothing comparable.
    uint64_t version = 0;
    bool valid = false;  ///< row has been advertised at least once
  };
  std::vector<AdvertState> adverts_;

  // ----- triggered-update state (allocated only when triggered(); §12) -----

  /// Per row: the neighbor's advertised metrics as received, *before* the
  /// local link extension — so utilization drift on the out-link can
  /// recompute the stored mv without a fresh probe.
  std::vector<pg::MetricsVector> neighbor_mv_;
  /// Per directed in-link (probe direction): last alive/dead state the local
  /// scan saw (1 = alive), for transition detection.
  std::vector<uint8_t> probe_link_alive_;
  /// Per directed out-link: last quantized utilization advertised into
  /// probes, for drift detection.
  std::vector<double> link_util_adv_;
  /// Per destination slot: hold-down expiry and the dirty flag.
  std::vector<sim::Time> holddown_until_;
  std::vector<uint8_t> trigger_pending_;
  uint32_t pending_count_ = 0;
  /// This switch's own destination slot (kNoSlot when not a destination):
  /// its trigger requests re-originate instead of diffing empty rows.
  uint32_t self_slot_ = UINT32_MAX;

  /// Test-only shadow of the PR 4 hash-map FwdT (options_.reference_tables).
  std::unordered_map<FwdKey, FwdEntry, FwdKeyHash> reference_fwdt_;

  /// Source-side pin of the BestT choice per flowlet (the "sender sets the
  /// initial tag and probe number" rule, §4.2).
  struct SourcePin {
    uint32_t tag = 0;
    uint32_t pid = 0;
    sim::Time last_seen = 0.0;
  };
  std::unordered_map<uint32_t, SourcePin> source_pins_;

  FlowletTable flowlets_;
  LoopDetector loop_detector_;
  ProbeClock probe_clock_;
  FailureDetector failure_detector_;

  /// Exact loop accounting (simulator-side truth, not a switch table): packet
  /// ids seen recently at this switch; a revisit is a looped packet. Packet
  /// ids are near-sequential (and shard-namespaced under the parallel
  /// engine), so they go through a full 64-bit mix before bucketing.
  struct PacketIdHash {
    size_t operator()(uint64_t id) const { return static_cast<size_t>(util::mix64(id)); }
  };
  std::unordered_map<uint64_t, uint8_t, PacketIdHash> recent_packets_;
  sim::Time recent_packets_reset_ = 0.0;

  ContraSwitchStats stats_;

  /// Bound at start(); counters are a relaxed add when set, trace records one
  /// predictable branch when no sink is attached.
  obs::Telemetry* telemetry_ = nullptr;
  /// Tracing-only: BestT next hop last reported per destination slot, for
  /// kRouteFlip detection (kInvalidLink = not yet reported). Only read when
  /// a sink is attached.
  std::vector<topology::LinkId> last_best_;
};

/// Installs a ContraSwitch at every node and returns raw observers.
std::vector<ContraSwitch*> install_contra_network(sim::Simulator& sim,
                                                  const compiler::CompileResult& compiled,
                                                  const pg::PolicyEvaluator& evaluator,
                                                  ContraSwitchOptions options = {});

}  // namespace contra::dataplane
