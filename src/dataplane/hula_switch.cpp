#include "dataplane/hula_switch.h"

#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace contra::dataplane {

using sim::Packet;
using sim::PacketKind;
using sim::Simulator;
using topology::FatTreeLayer;
using topology::LinkId;
using topology::NodeId;

namespace {

int layer_rank(FatTreeLayer layer) {
  switch (layer) {
    case FatTreeLayer::kEdge: return 0;
    case FatTreeLayer::kAgg: return 1;
    case FatTreeLayer::kCore: return 2;
    case FatTreeLayer::kUnknown: return -1;
  }
  return -1;
}

}  // namespace

HulaSwitch::HulaSwitch(NodeId self, HulaOptions options)
    : self_(self),
      options_(options),
      flowlets_(options.flowlet_timeout_s),
      probe_clock_(options.probe_period_s),
      // In triggered mode probe silence between keepalives is healthy, so the
      // failure window spans keepalive rounds, not probe periods. Port
      // signals (handle_link_state) restore the fast reaction.
      failure_detector_(options.failure_detect_periods * options.probe_period_s *
                        (options.triggered_updates && options.keepalive_rounds > 1
                             ? static_cast<double>(options.keepalive_rounds)
                             : 1.0)) {}

void HulaSwitch::bind_telemetry(Simulator& sim) {
  telemetry_ = &sim.telemetry();
  flowlets_.bind_telemetry(telemetry_, self_);
  failure_detector_.bind_telemetry(telemetry_, self_);
  // The topology is first reachable here (the constructor has no Simulator):
  // size the per-link failure state once so the hot path never grows it.
  failure_detector_.reserve_links(sim.topo().num_links());
  if (options_.triggered_updates && link_util_adv_.empty()) {
    link_util_adv_.assign(sim.topo().num_links(), 0.0);
  }
}

void HulaSwitch::start(Simulator& sim) {
  bind_telemetry(sim);
  layer_ = topology::fat_tree_layer(sim.topo(), self_);
  if (layer_ == FatTreeLayer::kUnknown) {
    throw std::invalid_argument("HULA requires a fat-tree topology (node " +
                                sim.topo().name(self_) + " has no layer)");
  }
  if (layer_ == FatTreeLayer::kEdge) originate_probes(sim);
}

void HulaSwitch::originate_probes(Simulator& sim) {
  const uint64_t version = probe_clock_.advance();
  bool triggered_round = false;
  if (options_.triggered_updates) {
    // Drift scan: did the quantized utilization of any local link move since
    // the last round we advertised? ToRs are the only originators in HULA, so
    // local drift (and port signals via pending_trigger_) is what converts
    // metric change into a probe wave; keepalive rounds cover the rest of the
    // fabric at 1/keepalive_rounds the rate.
    bool drift = false;
    const double q = options_.util_quantum;
    for (LinkId l : sim.topo().out_links(self_)) {
      double util = sim.link(l).utilization();
      if (q > 0.0) util = std::floor(util / q + 0.5) * q;
      if (util != link_util_adv_[l]) {
        link_util_adv_[l] = util;
        drift = true;
      }
    }
    const bool keepalive = keepalive_version(version);
    if (!keepalive && !drift && !pending_trigger_) {
      sim.events().schedule_in(options_.probe_period_s, [this, &sim] { originate_probes(sim); });
      return;
    }
    triggered_round = !keepalive;
    pending_trigger_ = false;
  }
  for (LinkId l : sim.topo().out_links(self_)) {  // all uplinks (edge->agg)
    Packet probe;
    probe.kind = PacketKind::kProbe;
    probe.id = sim.next_packet_id();
    probe.size_bytes = options_.probe_bytes;
    probe.src_switch = self_;
    probe.probe = sim::ProbeFields{self_, 0, 0, 0, version, pg::MetricsVector{}};
    probe.routing.hula_up = true;
    ++stats_.probes_originated;
    telemetry_->metrics().add(telemetry_->core().probes_originated);
    if (triggered_round) {
      ++stats_.probes_triggered;
      telemetry_->metrics().add(telemetry_->core().probes_triggered);
    }
    if (telemetry_->tracing()) {
      obs::TraceRecord r;
      r.t = sim.now();
      r.ev = obs::Ev::kProbeOrig;
      r.sw = self_;
      r.dst = self_;
      r.version = version;
      telemetry_->emit(r);
    }
    sim.send_on_link(l, std::move(probe));
  }
  sim.events().schedule_in(options_.probe_period_s, [this, &sim] { originate_probes(sim); });
}

void HulaSwitch::handle_packet(Simulator& sim, Packet&& packet, LinkId in_link) {
  if (telemetry_ == nullptr) bind_telemetry(sim);
  if (packet.kind == PacketKind::kProbe) {
    process_probe(sim, std::move(packet), in_link);
  } else {
    forward_data(sim, std::move(packet), in_link);
  }
}

void HulaSwitch::process_probe(Simulator& sim, Packet&& packet, LinkId in_link) {
  ++stats_.probes_received;
  failure_detector_.note_probe(in_link, sim.now());
  sim::ProbeFields& probe = *packet.probe;
  obs::Telemetry& tel = *telemetry_;
  tel.metrics().add(tel.core().probes_received);
  tel.metrics().add(tel.core().probe_bytes_rx, packet.size_bytes);
  if (options_.triggered_updates && keepalive_version(probe.version)) {
    ++stats_.keepalive_probes;
    tel.metrics().add(tel.core().keepalive_probes);
  }

  // Path utilization toward the origin ToR: max over the traffic-direction
  // (reverse) links, exactly like Contra's mv update.
  const LinkId traffic_link = sim.topo().link(in_link).reverse;
  probe.mv.extend(sim.link(traffic_link).utilization(), 0.0);

  BestHop& entry = best_[probe.origin];
  const bool fresher = probe.version > entry.version;
  const bool better = probe.mv.util < entry.util;
  const bool same_hop = entry.nhop == traffic_link;
  if (entry.nhop != topology::kInvalidLink && !fresher && !better && !same_hop) {
    tel.metrics().add(tel.core().probes_rejected_rank);
    if (tel.tracing()) {
      obs::TraceRecord r;
      r.t = sim.now();
      r.ev = obs::Ev::kProbeRejectRank;
      r.sw = self_;
      r.dst = probe.origin;
      r.version = probe.version;
      r.value = probe.mv.util;
      tel.emit(r);
    }
    return;
  }
  const LinkId old_nhop = entry.nhop;
  entry.nhop = traffic_link;
  entry.util = probe.mv.util;
  entry.version = probe.version;
  entry.updated_at = sim.now();
  tel.metrics().add(tel.core().probes_accepted);
  tel.metrics().add(tel.core().fwdt_updates);
  tel.metrics().observe(tel.core().probe_path_len, probe.mv.len);
  if (tel.tracing()) {
    obs::TraceRecord r;
    r.t = sim.now();
    r.ev = obs::Ev::kProbeAccept;
    r.sw = self_;
    r.dst = probe.origin;
    r.link = traffic_link;
    r.version = probe.version;
    r.value = probe.mv.util;
    tel.emit(r);
    if (old_nhop != topology::kInvalidLink && old_nhop != traffic_link) {
      tel.metrics().add(tel.core().route_flips);
      obs::TraceRecord flip;
      flip.t = sim.now();
      flip.ev = obs::Ev::kRouteFlip;
      flip.sw = self_;
      flip.dst = probe.origin;
      flip.link = traffic_link;
      flip.aux = old_nhop;
      tel.emit(flip);
    }
  }

  // Propagation restricted to up-down paths: probes that started down never
  // turn back up; the layer of the sender tells the direction.
  const FatTreeLayer from_layer = topology::fat_tree_layer(sim.topo(), sim.topo().link(in_link).from);
  const bool arrived_from_below = layer_rank(from_layer) < layer_rank(layer_);
  for (LinkId l : sim.topo().out_links(self_)) {
    if (l == traffic_link) continue;  // never back to the sender
    const FatTreeLayer to_layer = topology::fat_tree_layer(sim.topo(), sim.topo().link(l).to);
    const bool going_up = layer_rank(to_layer) > layer_rank(layer_);
    if (going_up && !arrived_from_below) continue;  // down-phase stays down
    Packet copy = packet;
    copy.id = sim.next_packet_id();
    copy.routing.hula_up = going_up;
    ++stats_.probes_propagated;
    sim.send_on_link(l, std::move(copy));
  }
}

bool HulaSwitch::entry_usable(const BestHop& entry, sim::Time now) const {
  if (entry.nhop == topology::kInvalidLink) return false;
  // Staleness doubles as failure detection: a failed next hop stops
  // delivering probes, so its entry ages out. Triggered mode refreshes
  // entries only on keepalive rounds, so the window scales with them.
  return now - entry.updated_at <=
         options_.metric_expiry_periods * options_.probe_period_s * window_scale();
}

void HulaSwitch::handle_link_state(Simulator& sim, LinkId link, bool up) {
  if (!options_.triggered_updates) return;  // legacy mode: silence-based only
  if (telemetry_ == nullptr) bind_telemetry(sim);
  if (!up) {
    // Probes toward us travel the reverse direction of our out-link.
    failure_detector_.note_down(sim.topo().link(link).reverse, sim.now());
  }
  // A ToR re-originates at its next tick (≤ one period away) with a fresh
  // version, so downstream switches adopt the post-transition paths without
  // waiting for a keepalive round.
  pending_trigger_ = true;
}

const HulaSwitch::BestHop* HulaSwitch::best_hop(NodeId dst_tor) const {
  auto it = best_.find(dst_tor);
  return it == best_.end() ? nullptr : &it->second;
}

void HulaSwitch::forward_data(Simulator& sim, Packet&& packet, LinkId in_link) {
  (void)in_link;
  const sim::Time now = sim.now();
  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }
  const uint32_t fid = util::hash_five_tuple(packet.tuple);
  const FlowletKey fkey{0, 0, fid};

  LinkId nhop = topology::kInvalidLink;
  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr) {
    const LinkId probe_dir = sim.topo().link(pinned->nhop).reverse;
    if (failure_detector_.presumed_failed(probe_dir, now)) {
      flowlets_.flush(fkey, now);
      pinned = nullptr;
    }
  }
  if (pinned != nullptr) {
    nhop = pinned->nhop;
    flowlets_.touch(fkey, now);
  } else {
    auto it = best_.find(packet.dst_switch);
    if (it == best_.end() || !entry_usable(it->second, now)) {
      ++stats_.data_dropped_no_route;
      telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
      return;
    }
    nhop = it->second.nhop;
    flowlets_.pin(fkey, FlowletEntry{nhop, 0, 0, now}, now);
  }
  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    telemetry_->metrics().add(telemetry_->core().data_dropped_ttl);
    return;
  }
  --packet.routing.ttl;
  ++stats_.data_forwarded;
  telemetry_->metrics().add(telemetry_->core().data_forwarded);
  sim.send_on_link(nhop, std::move(packet));
}

LinkId HulaSwitch::fluid_next_hop(Simulator& sim, NodeId dst_switch,
                                  const util::FiveTuple& tuple, sim::RoutingState& routing) {
  (void)routing;
  const sim::Time now = sim.now();
  const uint32_t fid = util::hash_five_tuple(tuple);
  const FlowletKey fkey{0, 0, fid};
  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr &&
      failure_detector_.presumed_failed(sim.topo().link(pinned->nhop).reverse, now)) {
    pinned = nullptr;  // read-only: the real flush waits for a packet
  }
  if (pinned != nullptr) return pinned->nhop;
  auto it = best_.find(dst_switch);
  if (it == best_.end() || !entry_usable(it->second, now)) return topology::kInvalidLink;
  return it->second.nhop;
}

std::vector<HulaSwitch*> install_hula_network(sim::Simulator& sim, HulaOptions options) {
  std::vector<HulaSwitch*> switches;
  for (NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<HulaSwitch>(n, options);
    HulaSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
