#include "dataplane/flowlet_table.h"

namespace contra::dataplane {

FlowletEntry* FlowletTable::lookup(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.last_seen > timeout_s_) {
    table_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void FlowletTable::pin(const FlowletKey& key, const FlowletEntry& entry) {
  table_[key] = entry;
}

void FlowletTable::touch(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it != table_.end()) it->second.last_seen = now;
}

void FlowletTable::flush(const FlowletKey& key) {
  if (table_.erase(key) > 0) ++stats_.flushes;
}

}  // namespace contra::dataplane
