#include "dataplane/flowlet_table.h"

namespace contra::dataplane {

void FlowletTable::emit(obs::Ev ev, const FlowletKey& key, topology::LinkId nhop,
                        double t, double value) const {
  obs::TraceRecord r;
  r.t = t;
  r.ev = ev;
  r.sw = switch_id_;
  r.tag = key.tag;
  r.pid = key.pid;
  r.aux = key.fid;
  r.link = nhop;
  r.value = value;
  telemetry_->emit(r);
}

void FlowletTable::remember_prev_nhop(const FlowletKey& key, topology::LinkId nhop) {
  if (prev_nhop_.size() >= kPrevNhopCap) prev_nhop_.clear();
  prev_nhop_[key] = nhop;
}

FlowletEntry* FlowletTable::lookup(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  // A flowlet whose inter-packet gap reached the timeout is expired: the
  // §5.2 failover story needs the boundary packet to re-rate, so the
  // comparison is >= (not >).
  if (now - it->second.last_seen >= timeout_s_) {
    remember_prev_nhop(key, it->second.nhop);
    if (telemetry_ != nullptr) {
      telemetry_->metrics().add(telemetry_->core().flowlets_expired);
      if (telemetry_->tracing()) {
        emit(obs::Ev::kFlowletExpire, key, it->second.nhop, now,
             now - it->second.last_seen);
      }
    }
    table_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void FlowletTable::pin(const FlowletKey& key, const FlowletEntry& entry, sim::Time now) {
  auto prev = prev_nhop_.find(key);
  const bool switched = prev != prev_nhop_.end() && prev->second != entry.nhop;
  if (switched) ++stats_.switches;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().add(telemetry_->core().flowlets_created);
    if (switched) telemetry_->metrics().add(telemetry_->core().flowlets_switched);
    if (telemetry_->tracing()) {
      if (switched) {
        emit(obs::Ev::kFlowletSwitch, key, entry.nhop, now,
             static_cast<double>(prev->second));
      } else {
        emit(obs::Ev::kFlowletCreate, key, entry.nhop, now);
      }
    }
  }
  if (prev != prev_nhop_.end()) prev_nhop_.erase(prev);
  table_[key] = entry;
}

void FlowletTable::touch(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it != table_.end()) it->second.last_seen = now;
}

void FlowletTable::flush(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it == table_.end()) return;
  remember_prev_nhop(key, it->second.nhop);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().add(telemetry_->core().flowlets_flushed);
    if (telemetry_->tracing()) {
      emit(obs::Ev::kFlowletFlush, key, it->second.nhop, now);
    }
  }
  table_.erase(it);
  ++stats_.flushes;
}

}  // namespace contra::dataplane
