#include "dataplane/flowlet_table.h"

namespace contra::dataplane {

void FlowletTable::emit(obs::Ev ev, const FlowletKey& key, topology::LinkId nhop,
                        double t, double value) const {
  obs::TraceRecord r;
  r.t = t;
  r.ev = ev;
  r.sw = switch_id_;
  r.tag = key.tag;
  r.pid = key.pid;
  r.aux = key.fid;
  r.link = nhop;
  r.value = value;
  telemetry_->emit(r);
}

FlowletEntry* FlowletTable::lookup(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.last_seen > timeout_s_) {
    if (telemetry_ != nullptr) {
      telemetry_->metrics().add(telemetry_->core().flowlets_expired);
      if (telemetry_->tracing()) {
        prev_nhop_[key] = it->second.nhop;
        emit(obs::Ev::kFlowletExpire, key, it->second.nhop, now,
             now - it->second.last_seen);
      }
    }
    table_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void FlowletTable::pin(const FlowletKey& key, const FlowletEntry& entry, sim::Time now) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics().add(telemetry_->core().flowlets_created);
    if (telemetry_->tracing()) {
      auto prev = prev_nhop_.find(key);
      if (prev != prev_nhop_.end() && prev->second != entry.nhop) {
        telemetry_->metrics().add(telemetry_->core().flowlets_switched);
        emit(obs::Ev::kFlowletSwitch, key, entry.nhop, now,
             static_cast<double>(prev->second));
      } else {
        emit(obs::Ev::kFlowletCreate, key, entry.nhop, now);
      }
      if (prev != prev_nhop_.end()) prev_nhop_.erase(prev);
    }
  }
  table_[key] = entry;
}

void FlowletTable::touch(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it != table_.end()) it->second.last_seen = now;
}

void FlowletTable::flush(const FlowletKey& key, sim::Time now) {
  auto it = table_.find(key);
  if (it == table_.end()) return;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().add(telemetry_->core().flowlets_flushed);
    if (telemetry_->tracing()) {
      prev_nhop_[key] = it->second.nhop;
      emit(obs::Ev::kFlowletFlush, key, it->second.nhop, now);
    }
  }
  table_.erase(it);
  ++stats_.flushes;
}

}  // namespace contra::dataplane
