// CONGA baseline (Alizadeh et al., SIGCOMM'14), simplified to its essence
// for 2-tier leaf-spine fabrics: distributed, congestion-aware, in-band load
// balancing.
//
//  * Source leaf: per (destination leaf, uplink) congestion table
//    (`congestion_to_leaf`), fed by piggybacked feedback; new flowlets pick
//    the least-congested uplink and the choice is stamped into the packet.
//  * In flight: every switch maxes the packet's metric with its egress
//    link's utilization (the DRE in real CONGA).
//  * Destination leaf: records (src leaf, uplink) -> metric
//    (`congestion_from_leaf`) and opportunistically piggybacks one such
//    observation on reverse-direction packets (round-robin over uplinks).
//
// Like HULA it is a point solution — the paper's motivation for Contra: it
// hard-codes both the topology family and the "least congested path" policy.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/ecmp_switch.h"
#include "dataplane/flowlet_table.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace contra::dataplane {

struct CongaOptions {
  double flowlet_timeout_s = 200e-6;
  /// Congestion entries decay to "unknown" (treated as 0 / most attractive)
  /// after this long without refresh.
  double metric_expiry_s = 10e-3;
};

struct CongaStats : BaselineStats {
  uint64_t feedback_sent = 0;
  uint64_t feedback_received = 0;
};

class CongaSwitch : public sim::Device {
 public:
  CongaSwitch(topology::NodeId self, CongaOptions options);

  void start(sim::Simulator& sim) override;
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  const char* kind_name() const override { return "conga"; }

  const CongaStats& stats() const { return stats_; }

  /// Congestion-to-leaf estimate for one uplink (tests/diagnostics).
  double congestion_to(topology::NodeId dst_leaf, uint8_t uplink) const;

 private:
  struct MetricCell {
    float value = 0.0f;
    sim::Time updated_at = -1.0;
  };

  void forward_from_leaf(sim::Simulator& sim, sim::Packet&& packet);
  void forward_from_spine(sim::Simulator& sim, sim::Packet&& packet);
  uint8_t pick_uplink(sim::Simulator& sim, topology::NodeId dst_leaf, uint32_t fid,
                      sim::Time now);

  topology::NodeId self_;
  CongaOptions options_;
  topology::FatTreeLayer layer_ = topology::FatTreeLayer::kUnknown;
  std::vector<topology::LinkId> uplinks_;  ///< leaf: sorted uplink ids

  /// dst/src leaf -> per-uplink congestion cells.
  std::unordered_map<topology::NodeId, std::vector<MetricCell>> congestion_to_leaf_;
  std::unordered_map<topology::NodeId, std::vector<MetricCell>> congestion_from_leaf_;
  std::unordered_map<topology::NodeId, uint8_t> feedback_round_robin_;

  FlowletTable flowlets_;
  CongaStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
};

/// Installs CONGA on a leaf-spine fabric (any 2-tier topology whose names
/// resolve to edge/agg layers).
std::vector<CongaSwitch*> install_conga_network(sim::Simulator& sim, CongaOptions options = {});

}  // namespace contra::dataplane
