#include "dataplane/conga_switch.h"

#include <algorithm>
#include <stdexcept>

#include "util/hash.h"

namespace contra::dataplane {

using sim::Packet;
using sim::PacketKind;
using sim::Simulator;
using topology::FatTreeLayer;
using topology::LinkId;
using topology::NodeId;

CongaSwitch::CongaSwitch(NodeId self, CongaOptions options)
    : self_(self), options_(options), flowlets_(options.flowlet_timeout_s) {}

void CongaSwitch::start(Simulator& sim) {
  telemetry_ = &sim.telemetry();
  flowlets_.bind_telemetry(telemetry_, self_);
  layer_ = topology::fat_tree_layer(sim.topo(), self_);
  if (layer_ != FatTreeLayer::kEdge && layer_ != FatTreeLayer::kAgg) {
    throw std::invalid_argument("CONGA requires a leaf-spine fabric (node " +
                                sim.topo().name(self_) + ")");
  }
  if (layer_ == FatTreeLayer::kEdge) {
    uplinks_ = sim.topo().out_links(self_);
    std::sort(uplinks_.begin(), uplinks_.end());
  }
}

double CongaSwitch::congestion_to(NodeId dst_leaf, uint8_t uplink) const {
  auto it = congestion_to_leaf_.find(dst_leaf);
  if (it == congestion_to_leaf_.end() || uplink >= it->second.size()) return 0.0;
  return it->second[uplink].value;
}

uint8_t CongaSwitch::pick_uplink(Simulator& sim, NodeId dst_leaf, uint32_t fid,
                                 sim::Time now) {
  auto& cells = congestion_to_leaf_[dst_leaf];
  cells.resize(uplinks_.size());
  auto metric_of = [&](uint8_t u) {
    // Remote (fed-back) path congestion, max-combined with the local uplink
    // DRE; expired/unseen remote cells read as 0 — optimistically explorable.
    const bool fresh =
        cells[u].updated_at >= 0 && now - cells[u].updated_at <= options_.metric_expiry_s;
    const double remote = fresh ? cells[u].value : 0.0;
    return std::max(remote, sim.link(uplinks_[u]).utilization());
  };
  // Hash seed keeps ties spread across uplinks; strict improvement replaces.
  uint8_t best = static_cast<uint8_t>(fid % uplinks_.size());
  double best_metric = metric_of(best);
  for (uint8_t u = 0; u < uplinks_.size(); ++u) {
    const double metric = metric_of(u);
    if (metric < best_metric - 1e-9) {
      best_metric = metric;
      best = u;
    }
  }
  return best;
}

void CongaSwitch::handle_packet(Simulator& sim, Packet&& packet, LinkId in_link) {
  (void)in_link;
  if (telemetry_ == nullptr) {
    telemetry_ = &sim.telemetry();
    flowlets_.bind_telemetry(telemetry_, self_);
  }
  if (packet.kind == PacketKind::kProbe) return;  // CONGA has no probes
  if (layer_ == FatTreeLayer::kEdge) {
    forward_from_leaf(sim, std::move(packet));
  } else {
    forward_from_spine(sim, std::move(packet));
  }
}

void CongaSwitch::forward_from_leaf(Simulator& sim, Packet&& packet) {
  const sim::Time now = sim.now();

  // Ingest piggybacked state from arriving fabric packets.
  if (packet.conga) {
    const sim::CongaFields& conga = *packet.conga;
    if (packet.dst_switch == self_ && conga.src_leaf != topology::kInvalidNode) {
      // Destination leaf: record the forward path's congestion.
      auto& cells = congestion_from_leaf_[conga.src_leaf];
      if (cells.size() <= conga.uplink) cells.resize(conga.uplink + 1);
      cells[conga.uplink] = MetricCell{conga.metric, now};
      if (conga.has_feedback) {
        // Feedback about OUR traffic toward conga.src_leaf.
        auto& to_cells = congestion_to_leaf_[conga.src_leaf];
        if (to_cells.size() <= conga.fb_uplink) to_cells.resize(conga.fb_uplink + 1);
        to_cells[conga.fb_uplink] = MetricCell{conga.fb_metric, now};
        ++stats_.feedback_received;
        telemetry_->metrics().add(telemetry_->core().conga_feedback_received);
      }
    }
  }

  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }

  // Source leaf: flowlet-pinned least-congested uplink.
  const uint32_t fid = util::hash_five_tuple(packet.tuple);
  const FlowletKey fkey{0, 0, fid};
  uint8_t uplink;
  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr && !sim.link(pinned->nhop).down()) {
    uplink = static_cast<uint8_t>(pinned->ntag);  // ntag reused as uplink idx
    flowlets_.touch(fkey, now);
  } else {
    uplink = pick_uplink(sim, packet.dst_switch, fid, now);
    flowlets_.pin(fkey, FlowletEntry{uplinks_[uplink], uplink, 0, now}, now);
  }
  if (uplink >= uplinks_.size()) uplink = 0;
  const LinkId out = uplinks_[uplink];

  // Stamp forward state + opportunistic feedback about the reverse leaf.
  sim::CongaFields conga;
  conga.src_leaf = self_;
  conga.uplink = uplink;
  conga.metric = static_cast<float>(sim.link(out).utilization());
  auto from_it = congestion_from_leaf_.find(packet.dst_switch);
  if (from_it != congestion_from_leaf_.end() && !from_it->second.empty()) {
    uint8_t& rr = feedback_round_robin_[packet.dst_switch];
    rr = static_cast<uint8_t>((rr + 1) % from_it->second.size());
    const MetricCell& cell = from_it->second[rr];
    if (cell.updated_at >= 0) {
      conga.has_feedback = true;
      conga.fb_uplink = rr;
      conga.fb_metric = cell.value;
      ++stats_.feedback_sent;
      telemetry_->metrics().add(telemetry_->core().conga_feedback_sent);
    }
  }
  packet.conga = conga;

  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    telemetry_->metrics().add(telemetry_->core().data_dropped_ttl);
    return;
  }
  --packet.routing.ttl;
  ++stats_.data_forwarded;
  telemetry_->metrics().add(telemetry_->core().data_forwarded);
  sim.send_on_link(out, std::move(packet));
}

void CongaSwitch::forward_from_spine(Simulator& sim, Packet&& packet) {
  const LinkId down = sim.topo().link_between(self_, packet.dst_switch);
  if (down == topology::kInvalidLink) {
    ++stats_.data_dropped_no_route;
    telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
    return;
  }
  if (packet.conga) {
    packet.conga->metric =
        std::max(packet.conga->metric, static_cast<float>(sim.link(down).utilization()));
  }
  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    telemetry_->metrics().add(telemetry_->core().data_dropped_ttl);
    return;
  }
  --packet.routing.ttl;
  ++stats_.data_forwarded;
  telemetry_->metrics().add(telemetry_->core().data_forwarded);
  sim.send_on_link(down, std::move(packet));
}

std::vector<CongaSwitch*> install_conga_network(sim::Simulator& sim, CongaOptions options) {
  std::vector<CongaSwitch*> switches;
  for (NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<CongaSwitch>(n, options);
    CongaSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
