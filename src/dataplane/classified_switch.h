// Multi-class Contra dataplane: one protocol instance (ContraSwitch) per
// traffic class, dispatched by flow predicates at ingress and by the stamped
// class id in transit. Probes carry their class id, so each class's
// distance-vector state converges independently — e.g. a latency-sensitive
// class can route over short paths while bulk traffic spreads by
// utilization (the B4-style separation the paper cites as future work).
#pragma once

#include <memory>
#include <vector>

#include "compiler/classified.h"
#include "dataplane/contra_switch.h"
#include "pg/policy_eval.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace contra::dataplane {

struct ClassifiedSwitchStats {
  uint64_t unclassified_drops = 0;  ///< no rule matched at ingress
};

class ClassifiedContraSwitch : public sim::Device {
 public:
  /// `evaluators` holds one PolicyEvaluator per class (same order as the
  /// compile result); both must outlive the switch.
  ClassifiedContraSwitch(const compiler::ClassifiedCompileResult& compiled,
                         const std::vector<pg::PolicyEvaluator>& evaluators,
                         topology::NodeId self, ContraSwitchOptions options = {});

  void start(sim::Simulator& sim) override;
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  const char* kind_name() const override { return "contra-classified"; }

  const ContraSwitch& class_switch(size_t cls) const { return *instances_.at(cls); }
  ContraSwitch& class_switch(size_t cls) { return *instances_.at(cls); }
  size_t num_classes() const { return instances_.size(); }
  const ClassifiedSwitchStats& stats() const { return stats_; }

 private:
  const compiler::ClassifiedCompileResult* compiled_;
  std::vector<std::unique_ptr<ContraSwitch>> instances_;
  ClassifiedSwitchStats stats_;
};

/// Installed network handle: owns the per-class evaluators the switches
/// reference. Keep it alive as long as the simulator runs.
struct ClassifiedNetwork {
  std::vector<pg::PolicyEvaluator> evaluators;
  std::vector<ClassifiedContraSwitch*> switches;  ///< observers, owned by sim
};

ClassifiedNetwork install_classified_network(sim::Simulator& sim,
                                             const compiler::ClassifiedCompileResult& compiled,
                                             ContraSwitchOptions options = {});

}  // namespace contra::dataplane
