// ECMP baseline: hash each flow onto one of the equal-cost shortest-path
// next hops, oblivious to load (the paper's weakest baseline).
#pragma once

#include <memory>

#include "dataplane/routing_tables.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace contra::dataplane {

struct BaselineStats {
  uint64_t data_forwarded = 0;
  uint64_t data_to_host = 0;
  uint64_t data_dropped_no_route = 0;
  uint64_t data_dropped_ttl = 0;
};

class EcmpSwitch : public sim::Device {
 public:
  using EcmpTable = std::vector<std::vector<std::vector<topology::LinkId>>>;

  EcmpSwitch(std::shared_ptr<const EcmpTable> table, topology::NodeId self)
      : table_(std::move(table)), self_(self) {}

  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  /// Hybrid engine route query: the same hash pick over live group members,
  /// with no allocation (count + index instead of materializing the group).
  topology::LinkId fluid_next_hop(sim::Simulator& sim, topology::NodeId dst_switch,
                                  const util::FiveTuple& tuple,
                                  sim::RoutingState& routing) override;
  const char* kind_name() const override { return "ecmp"; }

  const BaselineStats& stats() const { return stats_; }

 private:
  std::shared_ptr<const EcmpTable> table_;
  topology::NodeId self_;
  BaselineStats stats_;
};

/// Installs ECMP switches everywhere (table computed once, shared).
std::vector<EcmpSwitch*> install_ecmp_network(sim::Simulator& sim);

}  // namespace contra::dataplane
