// Lazy transient-loop detection (paper §5.5).
//
// Each switch keeps a fixed-size, hash-indexed table mapping a packet
// signature to the max and min TTL values seen. δ = maxttl - minttl equals
// the difference between the longest and shortest path the "same" packet
// took to reach this switch; a δ beyond the threshold flags a loop (with
// false positives, as the paper notes) and the caller flushes the offending
// flowlet entry. The table is sized and indexed like the P4 register it
// models: collisions overwrite.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/telemetry.h"

namespace contra::dataplane {

class LoopDetector {
 public:
  LoopDetector(uint32_t slots, uint8_t ttl_spread_threshold);

  /// Attributes loop_break counters/trace records to `switch_id`.
  void bind_telemetry(obs::Telemetry* telemetry, uint32_t switch_id) {
    telemetry_ = telemetry;
    switch_id_ = switch_id;
  }

  /// Observes a packet; true when a loop is suspected (the entry resets so
  /// one loop is reported once until it re-accumulates).
  bool observe(uint32_t signature, uint8_t ttl);

  /// As above, but also reports a detection through the bound telemetry
  /// (kLoopBreak stamped at `now`, aux = signature, value = TTL spread).
  bool observe(uint32_t signature, uint8_t ttl, double now);

  uint64_t loops_detected() const { return loops_detected_; }
  uint8_t threshold() const { return threshold_; }

 private:
  struct Slot {
    uint32_t signature = 0;
    uint8_t max_ttl = 0;
    uint8_t min_ttl = 255;
    bool valid = false;
  };

  std::vector<Slot> slots_;
  uint8_t threshold_;
  uint64_t loops_detected_ = 0;
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t switch_id_ = obs::kNoField;
};

}  // namespace contra::dataplane
