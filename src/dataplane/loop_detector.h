// Lazy transient-loop detection (paper §5.5).
//
// Each switch keeps a fixed-size, hash-indexed table mapping a packet
// signature to the max and min TTL values seen. δ = maxttl - minttl equals
// the difference between the longest and shortest path the "same" packet
// took to reach this switch; a δ beyond the threshold flags a loop (with
// false positives, as the paper notes) and the caller flushes the offending
// flowlet entry. The table is sized and indexed like the P4 register it
// models: collisions overwrite.
#pragma once

#include <cstdint>
#include <vector>

namespace contra::dataplane {

class LoopDetector {
 public:
  LoopDetector(uint32_t slots, uint8_t ttl_spread_threshold);

  /// Observes a packet; true when a loop is suspected (the entry resets so
  /// one loop is reported once until it re-accumulates).
  bool observe(uint32_t signature, uint8_t ttl);

  uint64_t loops_detected() const { return loops_detected_; }
  uint8_t threshold() const { return threshold_; }

 private:
  struct Slot {
    uint32_t signature = 0;
    uint8_t max_ttl = 0;
    uint8_t min_ttl = 255;
    bool valid = false;
  };

  std::vector<Slot> slots_;
  uint8_t threshold_;
  uint64_t loops_detected_ = 0;
};

}  // namespace contra::dataplane
