#include "dataplane/static_switch.h"

namespace contra::dataplane {

void StaticSwitch::handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                                 topology::LinkId in_link) {
  (void)in_link;
  if (packet.kind == sim::PacketKind::kProbe) return;
  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }
  const topology::LinkId hop = (*table_)[self_][packet.dst_switch];
  if (hop == topology::kInvalidLink) {
    ++stats_.data_dropped_no_route;
    return;
  }
  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    return;
  }
  --packet.routing.ttl;
  ++stats_.data_forwarded;
  sim.send_on_link(hop, std::move(packet));
}

std::vector<StaticSwitch*> install_shortest_path_network(sim::Simulator& sim) {
  auto table =
      std::make_shared<const StaticSwitch::Table>(compute_shortest_next_hops(sim.topo()));
  std::vector<StaticSwitch*> switches;
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<StaticSwitch>(table, n);
    StaticSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
