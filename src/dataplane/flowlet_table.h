// Policy-aware flowlet switching table (paper §5.3).
//
// Classic flowlet switching keys on the flow hash alone; Contra additionally
// keys on the packet's PG tag and probe id so that a pinned decision can
// never leak traffic across policy constraints (the Fig. 8a violation). The
// same class serves the baselines by leaving tag/pid at 0.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "topology/topology.h"
#include "util/hash.h"

namespace contra::dataplane {

struct FlowletKey {
  uint32_t tag = 0;
  uint32_t pid = 0;
  uint32_t fid = 0;  ///< five-tuple hash

  friend bool operator==(const FlowletKey&, const FlowletKey&) = default;
};

struct FlowletKeyHash {
  size_t operator()(const FlowletKey& k) const {
    uint64_t h = util::hash_combine(k.tag, k.pid);
    return static_cast<size_t>(util::hash_combine(h, k.fid));
  }
};

struct FlowletEntry {
  topology::LinkId nhop = topology::kInvalidLink;
  uint32_t ntag = 0;
  uint32_t npid = 0;
  sim::Time last_seen = 0.0;
};

struct FlowletStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expirations = 0;
  uint64_t flushes = 0;
  /// Re-pins of a previously expired/flushed key onto a different next hop
  /// (a path switch). Counted whether or not telemetry is attached.
  uint64_t switches = 0;
};

class FlowletTable {
 public:
  explicit FlowletTable(double timeout_s) : timeout_s_(timeout_s) {}

  /// Attributes flowlet create/switch/expire/flush events to `switch_id`.
  void bind_telemetry(obs::Telemetry* telemetry, uint32_t switch_id) {
    telemetry_ = telemetry;
    switch_id_ = switch_id;
  }

  /// Bound on the path-switch tombstone map: keys that expired but were
  /// never re-pinned would otherwise accumulate forever, so reaching the cap
  /// restarts the window (losing only switch-vs-create attribution for the
  /// dropped tombstones, never correctness).
  static constexpr size_t kPrevNhopCap = 1u << 12;
  size_t prev_nhop_window_size() const { return prev_nhop_.size(); }

  /// Live entry for this key, or nullptr (expired entries are erased and
  /// counted). Does NOT refresh the timestamp — call touch() after use.
  FlowletEntry* lookup(const FlowletKey& key, sim::Time now);

  /// Pins (or re-pins) a decision.
  void pin(const FlowletKey& key, const FlowletEntry& entry, sim::Time now = 0.0);

  /// Refreshes the inter-packet gap timer.
  void touch(const FlowletKey& key, sim::Time now);

  /// Removes a pinned decision (loop breaking, failure expiry).
  void flush(const FlowletKey& key, sim::Time now = 0.0);

  size_t size() const { return table_.size(); }
  const FlowletStats& stats() const { return stats_; }
  double timeout_s() const { return timeout_s_; }

 private:
  void emit(obs::Ev ev, const FlowletKey& key, topology::LinkId nhop, double t,
            double value = 0.0) const;

  double timeout_s_;
  std::unordered_map<FlowletKey, FlowletEntry, FlowletKeyHash> table_;
  FlowletStats stats_;
  void remember_prev_nhop(const FlowletKey& key, topology::LinkId nhop);

  obs::Telemetry* telemetry_ = nullptr;
  uint32_t switch_id_ = obs::kNoField;
  /// Last next hop a (now removed) key was pinned to — distinguishes a
  /// flowlet *switch* from a flowlet *create*. Maintained whenever entries
  /// are removed (metrics must count switches even without a trace sink) and
  /// bounded by kPrevNhopCap.
  std::unordered_map<FlowletKey, topology::LinkId, FlowletKeyHash> prev_nhop_;
};

}  // namespace contra::dataplane
