// SPAIN baseline (Mudigonda et al., NSDI'10): multipath over precomputed,
// load-oblivious path sets. The ingress switch hashes a flow onto a path
// index (SPAIN's VLAN); downstream switches forward along that path.
#pragma once

#include <memory>

#include "dataplane/ecmp_switch.h"
#include "dataplane/routing_tables.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace contra::dataplane {

class SpainSwitch : public sim::Device {
 public:
  SpainSwitch(std::shared_ptr<const SpainRouting> routing, topology::NodeId self)
      : routing_(std::move(routing)), self_(self) {}

  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  const char* kind_name() const override { return "spain"; }

  const BaselineStats& stats() const { return stats_; }

 private:
  std::shared_ptr<const SpainRouting> routing_;
  topology::NodeId self_;
  BaselineStats stats_;
};

std::vector<SpainSwitch*> install_spain_network(sim::Simulator& sim, uint32_t k = 4);

}  // namespace contra::dataplane
