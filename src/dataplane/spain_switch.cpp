#include "dataplane/spain_switch.h"

#include "util/hash.h"

namespace contra::dataplane {

void SpainSwitch::handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                                topology::LinkId in_link) {
  if (packet.kind == sim::PacketKind::kProbe) return;
  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }
  if (in_link == sim::kFromHost) {
    // Ingress: hash the flow onto one of the precomputed paths (the VLAN
    // choice in real SPAIN). Static for the flow's lifetime.
    const uint32_t n = routing_->num_paths(self_, packet.dst_switch);
    if (n == 0) {
      ++stats_.data_dropped_no_route;
      return;
    }
    packet.routing.path_id = util::hash_five_tuple(packet.tuple, /*seed=*/0x9747b28cu) % n;
  }
  const topology::LinkId hop =
      routing_->next_hop(packet.src_switch, packet.dst_switch, packet.routing.path_id, self_);
  if (hop == topology::kInvalidLink) {
    ++stats_.data_dropped_no_route;
    return;
  }
  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    return;
  }
  --packet.routing.ttl;
  ++stats_.data_forwarded;
  sim.send_on_link(hop, std::move(packet));
}

std::vector<SpainSwitch*> install_spain_network(sim::Simulator& sim, uint32_t k) {
  auto routing = std::make_shared<const SpainRouting>(sim.topo(), k);
  std::vector<SpainSwitch*> switches;
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<SpainSwitch>(routing, n);
    SpainSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
