#include "dataplane/routing_tables.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

namespace contra::dataplane {

using topology::LinkId;
using topology::NodeId;
using topology::Topology;

namespace {

/// BFS hop counts toward `dst`, honoring the availability predicate.
std::vector<uint32_t> filtered_bfs(const Topology& topo, NodeId dst, const LinkUpFn& link_up) {
  std::vector<uint32_t> dist(topo.num_nodes(), UINT32_MAX);
  std::deque<NodeId> queue{dst};
  dist[dst] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (LinkId l : topo.out_links(u)) {
      // Links are symmetric cables: usability of either direction gates both.
      if (link_up && !link_up(l)) continue;
      const NodeId v = topo.link(l).to;
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::vector<std::vector<LinkId>>> compute_ecmp_next_hops(const Topology& topo,
                                                                     const LinkUpFn& link_up) {
  const uint32_t n = topo.num_nodes();
  std::vector<std::vector<std::vector<LinkId>>> table(
      n, std::vector<std::vector<LinkId>>(n));
  for (NodeId dst = 0; dst < n; ++dst) {
    const std::vector<uint32_t> dist = filtered_bfs(topo, dst, link_up);
    for (NodeId node = 0; node < n; ++node) {
      if (node == dst || dist[node] == UINT32_MAX) continue;
      for (LinkId l : topo.out_links(node)) {
        if (link_up && !link_up(l)) continue;
        const NodeId neighbor = topo.link(l).to;
        if (dist[neighbor] + 1 == dist[node]) table[node][dst].push_back(l);
      }
    }
  }
  return table;
}

std::vector<std::vector<LinkId>> compute_shortest_next_hops(const Topology& topo,
                                                            const LinkUpFn& link_up) {
  const auto ecmp = compute_ecmp_next_hops(topo, link_up);
  const uint32_t n = topo.num_nodes();
  std::vector<std::vector<LinkId>> table(n, std::vector<LinkId>(n, topology::kInvalidLink));
  for (NodeId node = 0; node < n; ++node) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (!ecmp[node][dst].empty()) {
        // Deterministic tie-break: lowest link id.
        table[node][dst] = *std::min_element(ecmp[node][dst].begin(), ecmp[node][dst].end());
      }
    }
  }
  return table;
}

namespace {

/// Dijkstra with per-cable additive penalties (for path diversity). The
/// penalty table is dense, indexed by canonical link id (min of the two
/// directed ids of a cable): this probe sits in the O(E·V) relaxation inner
/// loop, where the old std::map lookup cost an O(log E) pointer chase per
/// edge.
std::vector<NodeId> penalized_shortest_path(const Topology& topo, NodeId src, NodeId dst,
                                            const std::vector<double>& penalty) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topo.num_nodes(), inf);
  std::vector<LinkId> via(topo.num_nodes(), topology::kInvalidLink);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (LinkId l : topo.out_links(u)) {
      const double w = 1.0 + penalty[std::min(l, topo.link(l).reverse)];
      const NodeId v = topo.link(l).to;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        via[v] = l;
        heap.push({dist[v], v});
      }
    }
  }
  if (dist[dst] == inf) return {};
  std::deque<NodeId> rev;
  NodeId cur = dst;
  while (cur != src) {
    rev.push_front(cur);
    cur = topo.link(via[cur]).from;
  }
  rev.push_front(src);
  return {rev.begin(), rev.end()};
}

}  // namespace

SpainRouting::SpainRouting(const Topology& topo, uint32_t k)
    : topo_(&topo), k_(k), num_nodes_(topo.num_nodes()) {
  paths_.resize(static_cast<size_t>(num_nodes_) * num_nodes_);
  std::vector<double> penalty(topo.num_links(), 0.0);
  for (NodeId src = 0; src < num_nodes_; ++src) {
    for (NodeId dst = 0; dst < num_nodes_; ++dst) {
      if (src == dst) continue;
      std::fill(penalty.begin(), penalty.end(), 0.0);
      auto& bucket = paths_[index(src, dst)];
      for (uint32_t i = 0; i < k_; ++i) {
        std::vector<NodeId> path = penalized_shortest_path(topo, src, dst, penalty);
        if (path.empty()) break;
        // Deduplicate: a repeat means the graph has no more diversity.
        const bool duplicate =
            std::find(bucket.begin(), bucket.end(), path) != bucket.end();
        for (size_t h = 0; h + 1 < path.size(); ++h) {
          const LinkId l = topo.link_between(path[h], path[h + 1]);
          penalty[std::min(l, topo.link(l).reverse)] += 2.0;
        }
        if (!duplicate) bucket.push_back(std::move(path));
      }
    }
  }
}

const std::vector<NodeId>& SpainRouting::path(NodeId src, NodeId dst, uint32_t path_id) const {
  const auto& bucket = paths_[index(src, dst)];
  if (bucket.empty()) return empty_;
  return bucket[path_id % bucket.size()];
}

uint32_t SpainRouting::num_paths(NodeId src, NodeId dst) const {
  return static_cast<uint32_t>(paths_[index(src, dst)].size());
}

LinkId SpainRouting::next_hop(NodeId src, NodeId dst, uint32_t path_id, NodeId self) const {
  const std::vector<NodeId>& p = path(src, dst, path_id);
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    if (p[i] == self) return topo_->link_between(self, p[i + 1]);
  }
  return topology::kInvalidLink;
}

}  // namespace contra::dataplane
