// Probe timing utilities shared by Contra and HULA switches: the periodic
// probe clock with per-round version numbers (§5.1-5.2) and the
// probe-silence failure detector (§5.4 — a link is declared failed after k
// probe periods with no probe arrivals on it).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "topology/topology.h"

namespace contra::dataplane {

/// Version counter advanced once per probe round.
class ProbeClock {
 public:
  explicit ProbeClock(double period_s) : period_s_(period_s) {}

  double period_s() const { return period_s_; }
  uint64_t version() const { return version_; }
  uint64_t advance() { return ++version_; }
  /// Control-plane restart: the next round re-announces from version 1, the
  /// regression neighbors must survive (see ContraSwitch version-reset
  /// detection).
  void reset() { version_ = 0; }

 private:
  double period_s_;
  uint64_t version_ = 0;
};

class FailureDetector {
 public:
  /// `silence_threshold_s` — how long without probes before a link is
  /// presumed failed (the paper uses k probe periods, k≈3).
  explicit FailureDetector(double silence_threshold_s)
      : threshold_s_(silence_threshold_s) {}

  /// Attributes failure_detect/failure_clear events to `switch_id`. The
  /// failed<->alive transition bookkeeping this needs runs only while a
  /// trace sink is attached, so the per-query cost stays a single map read
  /// otherwise.
  void bind_telemetry(obs::Telemetry* telemetry, uint32_t switch_id) {
    telemetry_ = telemetry;
    switch_id_ = switch_id;
  }

  /// A probe arrived over the given directed link (toward this switch).
  void note_probe(topology::LinkId in_link, sim::Time now) { last_probe_[in_link] = now; }

  /// Is the link presumed failed? Links that never carried a probe are
  /// treated as alive until `now` exceeds the threshold from time zero
  /// (bootstrap grace).
  bool presumed_failed(topology::LinkId in_link, sim::Time now) const {
    auto it = last_probe_.find(in_link);
    const sim::Time last = it == last_probe_.end() ? 0.0 : it->second;
    const bool failed = now - last > threshold_s_;
    if (telemetry_ != nullptr && telemetry_->tracing()) note_state(in_link, failed, now);
    return failed;
  }

  double threshold_s() const { return threshold_s_; }

 private:
  void note_state(topology::LinkId in_link, bool failed, sim::Time now) const {
    auto [it, inserted] = presumed_.try_emplace(in_link, failed);
    if (!inserted) {
      if (it->second == failed) return;
      it->second = failed;
    } else if (!failed) {
      return;  // first query saw a healthy link — nothing to report
    }
    telemetry_->metrics().add(failed ? telemetry_->core().failure_detections
                                     : telemetry_->core().failure_clears);
    obs::TraceRecord r;
    r.t = now;
    r.ev = failed ? obs::Ev::kFailureDetect : obs::Ev::kFailureClear;
    r.sw = switch_id_;
    r.link = in_link;
    telemetry_->emit(r);
  }

  double threshold_s_;
  std::unordered_map<topology::LinkId, sim::Time> last_probe_;
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t switch_id_ = obs::kNoField;
  /// Tracing-only failed/alive transition state per in-link.
  mutable std::unordered_map<topology::LinkId, bool> presumed_;
};

}  // namespace contra::dataplane
