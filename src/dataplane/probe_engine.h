// Probe timing utilities shared by Contra and HULA switches: the periodic
// probe clock with per-round version numbers (§5.1-5.2) and the
// probe-silence failure detector (§5.4 — a link is declared failed after k
// probe periods with no probe arrivals on it).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/event_queue.h"
#include "topology/topology.h"

namespace contra::dataplane {

/// Version counter advanced once per probe round.
class ProbeClock {
 public:
  explicit ProbeClock(double period_s) : period_s_(period_s) {}

  double period_s() const { return period_s_; }
  uint64_t version() const { return version_; }
  uint64_t advance() { return ++version_; }

 private:
  double period_s_;
  uint64_t version_ = 0;
};

class FailureDetector {
 public:
  /// `silence_threshold_s` — how long without probes before a link is
  /// presumed failed (the paper uses k probe periods, k≈3).
  explicit FailureDetector(double silence_threshold_s)
      : threshold_s_(silence_threshold_s) {}

  /// A probe arrived over the given directed link (toward this switch).
  void note_probe(topology::LinkId in_link, sim::Time now) { last_probe_[in_link] = now; }

  /// Is the link presumed failed? Links that never carried a probe are
  /// treated as alive until `now` exceeds the threshold from time zero
  /// (bootstrap grace).
  bool presumed_failed(topology::LinkId in_link, sim::Time now) const {
    auto it = last_probe_.find(in_link);
    const sim::Time last = it == last_probe_.end() ? 0.0 : it->second;
    return now - last > threshold_s_;
  }

  double threshold_s() const { return threshold_s_; }

 private:
  double threshold_s_;
  std::unordered_map<topology::LinkId, sim::Time> last_probe_;
};

}  // namespace contra::dataplane
