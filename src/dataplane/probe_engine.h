// Probe timing utilities shared by Contra and HULA switches: the periodic
// probe clock with per-round version numbers (§5.1-5.2) and the
// probe-silence failure detector (§5.4 — a link is declared failed after k
// probe periods with no probe arrivals on it).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "topology/topology.h"

namespace contra::dataplane {

/// Version counter advanced once per probe round.
class ProbeClock {
 public:
  explicit ProbeClock(double period_s) : period_s_(period_s) {}

  double period_s() const { return period_s_; }
  uint64_t version() const { return version_; }
  uint64_t advance() { return ++version_; }
  /// Control-plane restart: the next round re-announces from version 1, the
  /// regression neighbors must survive (see ContraSwitch version-reset
  /// detection).
  void reset() { version_ = 0; }

 private:
  double period_s_;
  uint64_t version_ = 0;
};

class FailureDetector {
 public:
  /// `silence_threshold_s` — how long without probes before a link is
  /// presumed failed (the paper uses k probe periods, k≈3). `num_links`
  /// pre-sizes the per-link state from the topology so steady-state queries
  /// and probe arrivals never allocate and the footprint is bounded by the
  /// wiring, not by churn history.
  explicit FailureDetector(double silence_threshold_s, size_t num_links = 0)
      : threshold_s_(silence_threshold_s) {
    reserve_links(num_links);
  }

  /// Grows (never shrinks) the tracked-link range; idempotent.
  void reserve_links(size_t num_links) {
    if (num_links > last_probe_.size()) {
      last_probe_.resize(num_links, 0.0);
      presumed_.resize(num_links, kUnknown);
    }
  }

  /// Links the detector holds state for (bounded by the topology once
  /// reserve_links ran; the regression tests pin this).
  size_t tracked_links() const { return last_probe_.size(); }

  /// Drops all state for a link removed from service: its timestamp returns
  /// to the bootstrap-grace default and the tracing transition state is
  /// forgotten, exactly as if the link had never carried a probe.
  void evict(topology::LinkId link) {
    if (link < last_probe_.size()) {
      last_probe_[link] = 0.0;
      presumed_[link] = kUnknown;
    }
  }

  /// Attributes failure_detect/failure_clear events to `switch_id`. The
  /// failed<->alive transition bookkeeping this needs runs only while a
  /// trace sink is attached, so the per-query cost stays a single map read
  /// otherwise.
  void bind_telemetry(obs::Telemetry* telemetry, uint32_t switch_id) {
    telemetry_ = telemetry;
    switch_id_ = switch_id;
  }

  /// A probe arrived over the given directed link (toward this switch).
  /// Out-of-range links (only reachable when reserve_links never ran) grow
  /// the state once; after reservation this is a plain store.
  void note_probe(topology::LinkId in_link, sim::Time now) {
    if (in_link >= last_probe_.size()) reserve_links(in_link + 1);
    last_probe_[in_link] = now;
  }

  /// Port signal: the link went administratively down. Backdates the
  /// last-probe timestamp past the silence threshold so presumed_failed
  /// flips immediately instead of waiting out the threshold — the
  /// triggered-update fast path (DESIGN.md §12). A later note_probe (link
  /// restored, probes flowing) clears it naturally.
  void note_down(topology::LinkId in_link, sim::Time now) {
    if (in_link >= last_probe_.size()) reserve_links(in_link + 1);
    last_probe_[in_link] = now - threshold_s_ * (1.0 + 1e-9) - 1e-12;
  }

  /// Is the link presumed failed? Links that never carried a probe are
  /// treated as alive until `now` exceeds the threshold from time zero
  /// (bootstrap grace).
  bool presumed_failed(topology::LinkId in_link, sim::Time now) const {
    const sim::Time last = in_link < last_probe_.size() ? last_probe_[in_link] : 0.0;
    const bool failed = now - last > threshold_s_;
    if (telemetry_ != nullptr && telemetry_->tracing()) note_state(in_link, failed, now);
    return failed;
  }

  double threshold_s() const { return threshold_s_; }

 private:
  /// Tracing-only transition states; kUnknown = never queried under tracing.
  static constexpr int8_t kUnknown = -1;
  static constexpr int8_t kAlive = 0;
  static constexpr int8_t kFailed = 1;

  void note_state(topology::LinkId in_link, bool failed, sim::Time now) const {
    if (in_link >= presumed_.size()) return;  // unreserved link: nothing to attribute
    int8_t& state = presumed_[in_link];
    const int8_t next = failed ? kFailed : kAlive;
    if (state == next) return;
    const bool first = state == kUnknown;
    state = next;
    if (first && !failed) return;  // first query saw a healthy link — nothing to report
    telemetry_->metrics().add(failed ? telemetry_->core().failure_detections
                                     : telemetry_->core().failure_clears);
    obs::TraceRecord r;
    r.t = now;
    r.ev = failed ? obs::Ev::kFailureDetect : obs::Ev::kFailureClear;
    r.sw = switch_id_;
    r.link = in_link;
    telemetry_->emit(r);
  }

  double threshold_s_;
  /// Last probe arrival per directed in-link; 0.0 = bootstrap grace.
  std::vector<sim::Time> last_probe_;
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t switch_id_ = obs::kNoField;
  /// Tracing-only failed/alive transition state per in-link.
  mutable std::vector<int8_t> presumed_;
};

}  // namespace contra::dataplane
