// HULA baseline (Katta et al., SOSR'16): utilization-aware load balancing
// specialized to multi-rooted tree (fat-tree) topologies. ToR switches
// originate probes that traverse up-down paths only; every switch keeps one
// best-hop entry per destination ToR; data uses flowlet switching onto the
// current best hop.
//
// The specialization to trees is exactly what the paper contrasts Contra
// against: HULA needs no tags, no product graph, and fewer probes — but it
// cannot run on arbitrary topologies or express other policies.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/ecmp_switch.h"
#include "dataplane/flowlet_table.h"
#include "dataplane/probe_engine.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace contra::dataplane {

struct HulaOptions {
  double probe_period_s = 256e-6;
  double flowlet_timeout_s = 200e-6;
  double failure_detect_periods = 3.0;
  double metric_expiry_periods = 12.0;
  uint32_t probe_bytes = 64;

  /// Triggered-update mode (DESIGN.md §12, HULA flavor): a ToR emits a probe
  /// round only on keepalive rounds, when a local cable changed state, or
  /// when the quantized utilization of one of its links drifted. Origination
  /// is already rate-limited to one round per period, which doubles as the
  /// hold-down. Staleness/failure windows scale by keepalive_rounds.
  bool triggered_updates = false;
  uint32_t keepalive_rounds = 32;
  /// Quantization step for the drift detector (the register granularity the
  /// Contra plane uses for the same purpose).
  double util_quantum = 1.0 / 64;
};

struct HulaStats : BaselineStats {
  uint64_t probes_originated = 0;
  uint64_t probes_received = 0;
  uint64_t probes_propagated = 0;
  uint64_t probes_triggered = 0;   ///< non-keepalive rounds emitted on drift/link events
  uint64_t keepalive_probes = 0;   ///< probes received on keepalive rounds
};

class HulaSwitch : public sim::Device {
 public:
  HulaSwitch(topology::NodeId self, HulaOptions options);

  void start(sim::Simulator& sim) override;
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  /// Port signal (triggered mode only): instant failure presumption on
  /// down; ToRs queue an immediate re-origination either way.
  void handle_link_state(sim::Simulator& sim, topology::LinkId link, bool up) override;
  /// Hybrid engine route query: forward_data's flowlet/best-hop selection
  /// without pinning, touching, or counting.
  topology::LinkId fluid_next_hop(sim::Simulator& sim, topology::NodeId dst_switch,
                                  const util::FiveTuple& tuple,
                                  sim::RoutingState& routing) override;
  const char* kind_name() const override { return "hula"; }

  const HulaStats& stats() const { return stats_; }

  struct BestHop {
    topology::LinkId nhop = topology::kInvalidLink;
    double util = 0.0;
    uint64_t version = 0;
    sim::Time updated_at = 0.0;
  };
  /// Best-hop entry toward a destination ToR, or nullptr.
  const BestHop* best_hop(topology::NodeId dst_tor) const;

 private:
  void originate_probes(sim::Simulator& sim);
  void process_probe(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);
  void forward_data(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);
  bool entry_usable(const BestHop& entry, sim::Time now) const;
  void bind_telemetry(sim::Simulator& sim);

  /// Probe periods a protocol timing window spans (×keepalive cadence in
  /// triggered mode — silence between keepalives is healthy).
  double window_scale() const {
    return options_.triggered_updates && options_.keepalive_rounds > 1
               ? static_cast<double>(options_.keepalive_rounds)
               : 1.0;
  }
  bool keepalive_version(uint64_t version) const {
    return options_.keepalive_rounds <= 1 || version % options_.keepalive_rounds == 1;
  }

  topology::NodeId self_;
  HulaOptions options_;
  topology::FatTreeLayer layer_ = topology::FatTreeLayer::kUnknown;
  /// Triggered mode: last quantized utilization seen per out-link (drift
  /// detector) and the port-signal re-origination flag.
  std::vector<double> link_util_adv_;
  bool pending_trigger_ = false;

  std::unordered_map<topology::NodeId, BestHop> best_;
  FlowletTable flowlets_;
  ProbeClock probe_clock_;
  FailureDetector failure_detector_;
  HulaStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
};

/// Installs HULA on a fat-tree (throws std::invalid_argument elsewhere).
std::vector<HulaSwitch*> install_hula_network(sim::Simulator& sim, HulaOptions options = {});

}  // namespace contra::dataplane
