// HULA baseline (Katta et al., SOSR'16): utilization-aware load balancing
// specialized to multi-rooted tree (fat-tree) topologies. ToR switches
// originate probes that traverse up-down paths only; every switch keeps one
// best-hop entry per destination ToR; data uses flowlet switching onto the
// current best hop.
//
// The specialization to trees is exactly what the paper contrasts Contra
// against: HULA needs no tags, no product graph, and fewer probes — but it
// cannot run on arbitrary topologies or express other policies.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/ecmp_switch.h"
#include "dataplane/flowlet_table.h"
#include "dataplane/probe_engine.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace contra::dataplane {

struct HulaOptions {
  double probe_period_s = 256e-6;
  double flowlet_timeout_s = 200e-6;
  double failure_detect_periods = 3.0;
  double metric_expiry_periods = 12.0;
  uint32_t probe_bytes = 64;
};

struct HulaStats : BaselineStats {
  uint64_t probes_originated = 0;
  uint64_t probes_received = 0;
  uint64_t probes_propagated = 0;
};

class HulaSwitch : public sim::Device {
 public:
  HulaSwitch(topology::NodeId self, HulaOptions options);

  void start(sim::Simulator& sim) override;
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId in_link) override;
  const char* kind_name() const override { return "hula"; }

  const HulaStats& stats() const { return stats_; }

  struct BestHop {
    topology::LinkId nhop = topology::kInvalidLink;
    double util = 0.0;
    uint64_t version = 0;
    sim::Time updated_at = 0.0;
  };
  /// Best-hop entry toward a destination ToR, or nullptr.
  const BestHop* best_hop(topology::NodeId dst_tor) const;

 private:
  void originate_probes(sim::Simulator& sim);
  void process_probe(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);
  void forward_data(sim::Simulator& sim, sim::Packet&& packet, topology::LinkId in_link);
  bool entry_usable(const BestHop& entry, sim::Time now) const;
  void bind_telemetry(sim::Simulator& sim);

  topology::NodeId self_;
  HulaOptions options_;
  topology::FatTreeLayer layer_ = topology::FatTreeLayer::kUnknown;

  std::unordered_map<topology::NodeId, BestHop> best_;
  FlowletTable flowlets_;
  ProbeClock probe_clock_;
  FailureDetector failure_detector_;
  HulaStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
};

/// Installs HULA on a fat-tree (throws std::invalid_argument elsewhere).
std::vector<HulaSwitch*> install_hula_network(sim::Simulator& sim, HulaOptions options = {});

}  // namespace contra::dataplane
