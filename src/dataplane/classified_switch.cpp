#include "dataplane/classified_switch.h"

namespace contra::dataplane {

ClassifiedContraSwitch::ClassifiedContraSwitch(
    const compiler::ClassifiedCompileResult& compiled,
    const std::vector<pg::PolicyEvaluator>& evaluators, topology::NodeId self,
    ContraSwitchOptions options)
    : compiled_(&compiled) {
  instances_.reserve(compiled.classes.size());
  for (size_t cls = 0; cls < compiled.classes.size(); ++cls) {
    ContraSwitchOptions class_options = options;
    class_options.traffic_class_id = static_cast<uint32_t>(cls);
    instances_.push_back(std::make_unique<ContraSwitch>(compiled.classes[cls],
                                                        evaluators[cls], self, class_options));
  }
}

void ClassifiedContraSwitch::start(sim::Simulator& sim) {
  for (auto& instance : instances_) instance->start(sim);
}

void ClassifiedContraSwitch::handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                                           topology::LinkId in_link) {
  size_t cls = 0;
  if (packet.is_probe()) {
    cls = packet.probe->traffic_class;
  } else if (in_link == sim::kFromHost && !packet.routing.stamped) {
    const auto matched = compiled_->classified.classify(packet.tuple);
    if (!matched) {
      ++stats_.unclassified_drops;
      return;
    }
    cls = *matched;
  } else {
    cls = packet.routing.traffic_class;
  }
  if (cls >= instances_.size()) {  // corrupt/foreign class id
    ++stats_.unclassified_drops;
    return;
  }
  instances_[cls]->handle_packet(sim, std::move(packet), in_link);
}

ClassifiedNetwork install_classified_network(sim::Simulator& sim,
                                             const compiler::ClassifiedCompileResult& compiled,
                                             ContraSwitchOptions options) {
  ClassifiedNetwork network;
  network.evaluators.reserve(compiled.classes.size());
  for (const compiler::CompileResult& cls : compiled.classes) {
    network.evaluators.emplace_back(cls.graph, cls.decomposition);
  }
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<ClassifiedContraSwitch>(compiled, network.evaluators, n, options);
    ClassifiedContraSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) network.switches.push_back(raw);
  }
  return network;
}

}  // namespace contra::dataplane
