#include "dataplane/ecmp_switch.h"

#include "util/hash.h"

namespace contra::dataplane {

void EcmpSwitch::handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                               topology::LinkId in_link) {
  (void)in_link;
  if (packet.kind == sim::PacketKind::kProbe) return;  // no probes in ECMP
  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }
  // ECMP groups exclude ports whose link is locally down (standard LAG/ECMP
  // behaviour); it stays load-oblivious among the live members.
  const auto& hops = (*table_)[self_][packet.dst_switch];
  std::vector<topology::LinkId> live;
  live.reserve(hops.size());
  for (topology::LinkId l : hops) {
    if (!sim.link(l).down()) live.push_back(l);
  }
  if (live.empty()) {
    ++stats_.data_dropped_no_route;
    return;
  }
  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    return;
  }
  --packet.routing.ttl;
  const uint32_t h = util::hash_five_tuple(packet.tuple, /*seed=*/0x5bd1e995u);
  ++stats_.data_forwarded;
  sim.send_on_link(live[h % live.size()], std::move(packet));
}

topology::LinkId EcmpSwitch::fluid_next_hop(sim::Simulator& sim, topology::NodeId dst_switch,
                                            const util::FiveTuple& tuple,
                                            sim::RoutingState& routing) {
  (void)routing;
  const auto& hops = (*table_)[self_][dst_switch];
  uint32_t live = 0;
  for (topology::LinkId l : hops) {
    if (!sim.link(l).down()) ++live;
  }
  if (live == 0) return topology::kInvalidLink;
  // Same pick as handle_packet's `live[h % live.size()]`, found by counting
  // instead of building the group vector.
  const uint32_t pick = util::hash_five_tuple(tuple, /*seed=*/0x5bd1e995u) % live;
  uint32_t idx = 0;
  for (topology::LinkId l : hops) {
    if (sim.link(l).down()) continue;
    if (idx++ == pick) return l;
  }
  return topology::kInvalidLink;
}

std::vector<EcmpSwitch*> install_ecmp_network(sim::Simulator& sim) {
  // The table reflects the routing protocol's converged view: links already
  // down at install time are excluded (fail links before installing to model
  // a steady-state asymmetric topology, as in Fig. 12).
  auto table = std::make_shared<const EcmpSwitch::EcmpTable>(compute_ecmp_next_hops(
      sim.topo(), [&sim](topology::LinkId l) { return !sim.link(l).down(); }));
  std::vector<EcmpSwitch*> switches;
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<EcmpSwitch>(table, n);
    EcmpSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
