// Offline routing computations shared by the baseline dataplanes:
// single/multi shortest-path next hops (SP, ECMP) and SPAIN-style
// precomputed multipath sets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "topology/topology.h"

namespace contra::dataplane {

/// Predicate for link availability; routing recomputation after a failure
/// (the converged state of the underlying routing protocol) passes one that
/// excludes the failed links.
using LinkUpFn = std::function<bool(topology::LinkId)>;

/// [node][dst] -> all out-links on hop-count-shortest paths (empty at dst).
std::vector<std::vector<std::vector<topology::LinkId>>> compute_ecmp_next_hops(
    const topology::Topology& topo, const LinkUpFn& link_up = {});

/// [node][dst] -> the single deterministic shortest-path out-link
/// (kInvalidLink at dst or if unreachable).
std::vector<std::vector<topology::LinkId>> compute_shortest_next_hops(
    const topology::Topology& topo, const LinkUpFn& link_up = {});

/// SPAIN (NSDI'10) style path precomputation: k paths per (src, dst) chosen
/// by repeated shortest-path with overlap penalties, so the set is diverse.
/// Flows hash onto a path index carried in the packet (the VLAN id in real
/// SPAIN); switches forward along the selected path.
class SpainRouting {
 public:
  SpainRouting(const topology::Topology& topo, uint32_t k);

  uint32_t k() const { return k_; }

  /// The path node sequence, or empty when fewer than path_id+1 paths exist.
  const std::vector<topology::NodeId>& path(topology::NodeId src, topology::NodeId dst,
                                            uint32_t path_id) const;

  /// Next out-link for a packet of (src, dst, path_id) currently at `self`,
  /// or kInvalidLink if `self` is off-path (a forwarding anomaly).
  topology::LinkId next_hop(topology::NodeId src, topology::NodeId dst, uint32_t path_id,
                            topology::NodeId self) const;

  /// Number of distinct paths available for this pair.
  uint32_t num_paths(topology::NodeId src, topology::NodeId dst) const;

 private:
  size_t index(topology::NodeId src, topology::NodeId dst) const {
    return static_cast<size_t>(src) * num_nodes_ + dst;
  }

  const topology::Topology* topo_;
  uint32_t k_;
  uint32_t num_nodes_;
  /// [src*N+dst] -> up to k node sequences.
  std::vector<std::vector<std::vector<topology::NodeId>>> paths_;
  std::vector<topology::NodeId> empty_;
};

}  // namespace contra::dataplane
