#include "dataplane/contra_switch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "util/logging.h"

namespace contra::dataplane {

using sim::Packet;
using sim::PacketKind;
using sim::Simulator;
using topology::LinkId;
using topology::NodeId;

ContraSwitch::ContraSwitch(const compiler::CompileResult& compiled,
                           const pg::PolicyEvaluator& evaluator, NodeId self,
                           ContraSwitchOptions options)
    : compiled_(&compiled),
      evaluator_(&evaluator),
      self_(self),
      options_(options),
      dense_(&compiled.switches[self].dense),
      // The full compiled key universe is materialized up front (§4.3 state
      // accounting — exactly the P4 register array a real switch would
      // allocate), so steady-state probe processing never allocates: updates
      // are indexed stores, not hash inserts.
      rows_(dense_->num_rows()),
      row_present_(dense_->num_rows(), 0),
      adverts_(dense_->num_rows()),
      flowlets_(options.flowlet_timeout_s),
      loop_detector_(options.loop_table_slots, options.loop_ttl_threshold),
      probe_clock_(options.probe_period_s),
      // Triggered mode stretches the silence threshold by the keepalive
      // cadence: between keepalives, probe silence on a healthy link is the
      // designed steady state, not a failure. Port signals (note_down) cover
      // the fast path.
      failure_detector_(options.failure_detect_periods * options.probe_period_s *
                            ((options.triggered_updates && options.versioned_probes &&
                              options.keepalive_rounds > 1)
                                 ? options.keepalive_rounds
                                 : 1),
                        compiled.graph.topo().num_links()),
      last_best_(dense_->destinations.size(), topology::kInvalidLink) {
  const auto& attrs = compiled.decomposition.attrs;
  policy_carries_util_ =
      std::find(attrs.begin(), attrs.end(), lang::PathAttr::kUtil) != attrs.end();
  const uint32_t num_tags = compiled.graph.num_tags();
  tag_step_.assign(num_tags, pg::kInvalidTag);
  pg_node_of_tag_.assign(num_tags, pg::kInvalidPgNode);
  for (uint32_t tag = 0; tag < num_tags; ++tag) {
    tag_step_[tag] = compiled.graph.next_tag(tag, self);
    pg_node_of_tag_[tag] = compiled.graph.node_index(self, tag);
  }
  if (options_.reference_tables) reference_fwdt_.reserve(rows_.size());
  if (triggered()) {
    // All triggered-engine state is preallocated here so the steady-state
    // scan/emit paths never allocate (the probe_steady_state bench gates it).
    const size_t num_links = compiled.graph.topo().num_links();
    neighbor_mv_.assign(rows_.size(), pg::MetricsVector{});
    probe_link_alive_.assign(num_links, 1);
    link_util_adv_.assign(num_links, 0.0);
    holddown_until_.assign(dense_->destinations.size(), 0.0);
    trigger_pending_.assign(dense_->destinations.size(), 0);
    self_slot_ = compiled.switches[self_].is_destination && self_ < dense_->dst_slot.size()
                     ? dense_->dst_slot[self_]
                     : compiler::DenseFwdIndex::kNoSlot;
  }
}

void ContraSwitch::bind_telemetry(Simulator& sim) {
  telemetry_ = &sim.telemetry();
  flowlets_.bind_telemetry(telemetry_, self_);
  loop_detector_.bind_telemetry(telemetry_, self_);
  failure_detector_.bind_telemetry(telemetry_, self_);
}

void ContraSwitch::start(Simulator& sim) {
  bind_telemetry(sim);
  if (triggered()) {
    // Every switch runs the per-period control tick: destinations advance
    // their clock (emitting only on keepalive rounds), and all switches scan
    // local link/utilization state and flush hold-down-deferred triggers.
    control_tick(sim);
  } else if (compiled_->switches[self_].is_destination) {
    // Jitter-free periodic origination; all destinations share the phase,
    // which keeps rounds comparable (the paper's probes are periodic too).
    originate_probes(sim);
  }
}

void ContraSwitch::trace_probe(obs::Ev ev, const sim::ProbeFields& probe, double t,
                               uint32_t aux) {
  obs::TraceRecord r;
  r.t = t;
  r.ev = ev;
  r.sw = self_;
  r.dst = probe.origin;
  r.tag = probe.tag;
  r.pid = probe.pid;
  r.version = probe.version;
  r.value = probe.mv.len;
  r.aux = aux;
  telemetry_->emit(r);
}

void ContraSwitch::note_route_flip(NodeId dst, sim::Time now) {
  const auto choice = best_choice(dst, now);
  if (!choice) return;
  const uint32_t slot = dst < dense_->dst_slot.size() ? dense_->dst_slot[dst]
                                                      : compiler::DenseFwdIndex::kNoSlot;
  if (slot == compiler::DenseFwdIndex::kNoSlot) return;
  LinkId& last = last_best_[slot];
  if (last == topology::kInvalidLink || last == choice->nhop) {
    last = choice->nhop;
    return;
  }
  const LinkId old_nhop = last;
  last = choice->nhop;
  telemetry_->metrics().add(telemetry_->core().route_flips);
  obs::TraceRecord r;
  r.t = now;
  r.ev = obs::Ev::kRouteFlip;
  r.sw = self_;
  r.dst = dst;
  r.tag = choice->tag;
  r.pid = choice->pid;
  r.link = choice->nhop;
  r.aux = old_nhop;
  telemetry_->emit(r);
}

uint32_t ContraSwitch::probe_wire_bytes() const {
  return options_.probe_base_bytes +
         4 * static_cast<uint32_t>(compiled_->decomposition.attrs.size());
}

void ContraSwitch::emit_origin_round(Simulator& sim, uint64_t version) {
  const uint32_t origin_tag = compiled_->switches[self_].origin_tag;
  const uint32_t pg_node = pg_node_of_tag_[origin_tag];
  if (pg_node == pg::kInvalidPgNode) return;
  for (uint32_t pid = 0; pid < evaluator_->num_pids(); ++pid) {
    for (const pg::PgEdge& edge : compiled_->graph.out_edges(pg_node)) {
      Packet probe;
      probe.kind = PacketKind::kProbe;
      probe.id = sim.next_packet_id();
      probe.size_bytes = probe_wire_bytes();
      probe.src_switch = self_;
      probe.probe = sim::ProbeFields{self_, pid, origin_tag, options_.traffic_class_id,
                                     version, pg::MetricsVector{}};
      ++stats_.probes_originated;
      telemetry_->metrics().add(telemetry_->core().probes_originated);
      if (telemetry_->tracing()) trace_probe(obs::Ev::kProbeOrig, *probe.probe, sim.now());
      sim.send_on_link(edge.link, std::move(probe));
    }
  }
}

void ContraSwitch::originate_probes(Simulator& sim) {
  emit_origin_round(sim, probe_clock_.advance());
  sim.events().schedule_in(options_.probe_period_s, [this, &sim] { originate_probes(sim); });
}

void ContraSwitch::control_tick(Simulator& sim) {
  if (compiled_->switches[self_].is_destination) {
    // The clock still ticks every period (versions identify rounds network-
    // wide), but only keepalive rounds flood — the liveness backstop that
    // feeds downstream failure detectors and pins the fixed point (§12).
    const uint64_t version = probe_clock_.advance();
    if (keepalive_version(version)) emit_origin_round(sim, version);
  }
  scan_local_changes(sim);
  flush_pending(sim);
  sim.events().schedule_in(options_.probe_period_s, [this, &sim] { control_tick(sim); });
}

void ContraSwitch::scan_local_changes(Simulator& sim) {
  const sim::Time now = sim.now();
  const topology::Topology& topo = compiled_->graph.topo();
  for (const LinkId out : topo.out_links(self_)) {
    // Probe-silence transitions found by the detector (remote failures the
    // port signal cannot see) become trigger waves here, one period late at
    // worst.
    const LinkId probe_dir = topo.link(out).reverse;
    const bool alive = !failure_detector_.presumed_failed(probe_dir, now);
    if (alive != (probe_link_alive_[probe_dir] != 0)) {
      probe_link_alive_[probe_dir] = alive ? 1 : 0;
      on_link_transition(sim, out, alive);
    }
    // Quantized-utilization drift on the out-link: re-derive every row routed
    // over it from the cached neighbor advert (metric drift => focused wave,
    // no fresh probe needed). Util-blind policies skip the scan — the drift
    // could never change a rank, only mint re-advertisement noise.
    if (!policy_carries_util_) continue;
    double util = sim.link(out).utilization();
    if (options_.util_quantum > 0) {
      util = std::round(util / options_.util_quantum) * options_.util_quantum;
    }
    if (util == link_util_adv_[out]) continue;
    link_util_adv_[out] = util;
    const double lat_us = sim.link(out).delay_s() * 1e6;
    for (uint32_t r = 0; r < rows_.size(); ++r) {
      if (!row_present_[r]) continue;
      FwdEntry& entry = rows_[r];
      if (entry.nhop != out || entry.withdrawn) continue;
      pg::MetricsVector mv = neighbor_mv_[r];
      mv.extend(util, lat_us);
      if (mv.util == entry.mv.util && mv.lat == entry.mv.lat && mv.len == entry.mv.len) {
        continue;
      }
      topology::NodeId dst = topology::kInvalidNode;
      uint32_t tag = 0, pid = 0;
      dense_->key_of(r, dst, tag, pid);
      entry.mv = mv;
      entry.rank = evaluator_->propagation_rank(pid, mv);
      if (options_.reference_tables) reference_fwdt_[FwdKey{dst, tag, pid}] = entry;
      request_trigger(dense_->dst_slot[dst], now);
    }
  }
}

void ContraSwitch::on_link_transition(Simulator& sim, LinkId traffic_link, bool alive) {
  (void)alive;  // emit_deltas re-reads entry_usable; both edges just mark dirty
  const sim::Time now = sim.now();
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    if (!row_present_[r] || rows_[r].nhop != traffic_link) continue;
    topology::NodeId dst = topology::kInvalidNode;
    uint32_t tag = 0, pid = 0;
    dense_->key_of(r, dst, tag, pid);
    request_trigger(dense_->dst_slot[dst], now);
  }
}

void ContraSwitch::request_trigger(uint32_t slot, sim::Time now) {
  if (slot >= trigger_pending_.size() || trigger_pending_[slot] != 0) return;
  trigger_pending_[slot] = 1;
  ++pending_count_;
  if (now < holddown_until_[slot]) {
    // Inside the hold-down window: parked until the first control tick after
    // expiry (trailing-edge coalescing — the final state still propagates).
    ++stats_.probes_holddown_deferred;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().add(telemetry_->core().probes_holddown_deferred);
    }
  }
}

void ContraSwitch::flush_pending(Simulator& sim) {
  if (pending_count_ == 0) return;
  const sim::Time now = sim.now();
  for (uint32_t slot = 0; slot < trigger_pending_.size(); ++slot) {
    if (trigger_pending_[slot] == 0 || now < holddown_until_[slot]) continue;
    trigger_pending_[slot] = 0;
    --pending_count_;
    uint32_t sent = 0;
    if (slot == self_slot_) {
      // Origin trigger (e.g. local link recovery): re-announce under the
      // CURRENT round's version. It is still fresher than anything a receiver
      // holds (only every keepalive_rounds-th version floods), so adoption is
      // unconditional — but the clock is NOT advanced: an out-of-band advance
      // would shift this origin's keepalive phase off the network-wide tick,
      // and the resulting probe serialization changes re-break equal-rank
      // ties differently from the periodic protocol (digest parity breaks).
      emit_origin_round(sim, probe_clock_.version());
      sent = 1;
    } else {
      sent = emit_deltas(sim, slot);
    }
    // Arm hold-down only when something went out; a no-op flush should not
    // penalize the next real change.
    if (sent > 0) {
      holddown_until_[slot] = now + options_.holddown_periods * options_.probe_period_s;
    }
  }
}

uint32_t ContraSwitch::emit_deltas(Simulator& sim, uint32_t slot) {
  const sim::Time now = sim.now();
  const uint32_t begin = dense_->slice_begin(slot);
  const uint32_t width = dense_->slice_width();
  const uint32_t num_pids = dense_->num_pids;
  const NodeId dst = dense_->destinations[slot];
  obs::Telemetry& tel = *telemetry_;
  uint32_t sent = 0;
  for (uint32_t off = 0; off < width; ++off) {
    const uint32_t row = begin + off;
    const uint32_t local_tag = dense_->slot_tags[off / num_pids];
    const uint32_t pid = off % num_pids;
    AdvertState& adv = adverts_[row];
    if (!row_present_[row]) {
      if (adv.valid) {
        // A standing advert for a row this switch no longer holds — only
        // reachable after a control-plane restart wiped the RIB (rows are
        // never deleted otherwise). Withdraw it at the ledger's version so
        // the poison clears the receiver's version guard; the ledger entry
        // then retires. Origins keep minting fresher versions, so the next
        // keepalive resurrects whatever is genuinely alive.
        FwdEntry ghost;
        ghost.ntag = adv.ntag;
        ghost.nhop = adv.nhop;
        ghost.version = adv.version;
        const uint32_t copies = send_row_advert(sim, dst, local_tag, pid, ghost, true);
        sent += copies;
        stats_.probes_withdrawn += copies;
        tel.metrics().add(tel.core().probes_withdrawn, copies);
        adv.valid = false;
      }
      continue;
    }
    FwdEntry& entry = rows_[row];
    if (entry_usable(entry, now)) {
      const double lat_q = quantize_advert_lat(entry.mv.lat);
      if (adv.valid && adv.util == entry.mv.util && adv.lat == lat_q &&
          adv.len == entry.mv.len && adv.ntag == entry.ntag && adv.nhop == entry.nhop) {
        continue;  // standing advertisement unchanged: nothing to say
      }
      const uint32_t copies = send_row_advert(sim, dst, local_tag, pid, entry, false);
      sent += copies;
      stats_.probes_triggered += copies;
      tel.metrics().add(tel.core().probes_triggered, copies);
      adv.util = entry.mv.util;
      adv.lat = lat_q;
      adv.len = entry.mv.len;
      adv.ntag = entry.ntag;
      adv.nhop = entry.nhop;
      adv.version = entry.version;
      adv.valid = true;
    } else if (adv.valid) {
      // The row we once advertised is no longer usable: poison it downstream
      // instead of letting neighbors wait out metric expiry.
      const uint32_t copies = send_row_advert(sim, dst, local_tag, pid, entry, true);
      sent += copies;
      stats_.probes_withdrawn += copies;
      tel.metrics().add(tel.core().probes_withdrawn, copies);
      adv.valid = false;
    }
  }
  return sent;
}

uint32_t ContraSwitch::send_row_advert(Simulator& sim, NodeId dst, uint32_t local_tag,
                                       uint32_t pid, const FwdEntry& entry, bool withdraw,
                                       LinkId only_link) {
  const uint32_t pg_node = pg_node_of_tag_[local_tag];
  if (pg_node == pg::kInvalidPgNode) return 0;
  Packet probe;
  probe.kind = PacketKind::kProbe;
  probe.size_bytes = probe_wire_bytes();
  probe.src_switch = self_;
  probe.probe = sim::ProbeFields{dst,           pid,  local_tag, options_.traffic_class_id,
                                 entry.version, entry.mv, withdraw};
  uint32_t copies = 0;
  for (const pg::PgEdge& edge : compiled_->graph.out_edges(pg_node)) {
    // Pure back-edge: our successor taught us this row; telling it back is
    // stale by construction (and poison toward it would be split-horizon
    // noise).
    if (edge.link == entry.nhop && edge.to_tag == entry.ntag) continue;
    if (only_link != topology::kInvalidLink && edge.link != only_link) continue;
    Packet copy = probe;
    copy.id = sim.next_packet_id();
    sim.send_on_link(edge.link, std::move(copy));
    ++copies;
  }
  if (copies > 0 && telemetry_->tracing()) {
    trace_probe(withdraw ? obs::Ev::kProbeWithdraw : obs::Ev::kProbeTrigger, *probe.probe,
                sim.now(), copies);
  }
  return copies;
}

void ContraSwitch::resync_link(Simulator& sim, LinkId traffic_link) {
  const sim::Time now = sim.now();
  obs::Telemetry& tel = *telemetry_;
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    if (!row_present_[r]) continue;
    const FwdEntry& entry = rows_[r];
    if (!entry_usable(entry, now)) continue;
    topology::NodeId dst = topology::kInvalidNode;
    uint32_t tag = 0, pid = 0;
    dense_->key_of(r, dst, tag, pid);
    const uint32_t copies = send_row_advert(sim, dst, tag, pid, entry, false, traffic_link);
    stats_.probes_triggered += copies;
    if (copies > 0) tel.metrics().add(tel.core().probes_triggered, copies);
  }
}

void ContraSwitch::handle_link_state(Simulator& sim, LinkId link, bool up) {
  if (!triggered()) return;  // periodic protocols rely on probe silence only
  if (telemetry_ == nullptr) bind_telemetry(sim);
  const sim::Time now = sim.now();
  const LinkId probe_dir = sim.topo().link(link).reverse;
  if (!up) {
    // Port-down: presume the probe direction failed *now* (no silence wait)
    // and poison every destination routed over the link — the focused
    // failure wave.
    failure_detector_.note_down(probe_dir, now);
    if (probe_dir < probe_link_alive_.size() && probe_link_alive_[probe_dir] != 0) {
      probe_link_alive_[probe_dir] = 0;
      on_link_transition(sim, link, false);
    }
    flush_pending(sim);
  } else {
    // Port-up: the detector keeps presuming failure until probes actually
    // flow again. Re-send our standing adverts over the revived link so the
    // neighbor relearns state now, and re-announce ourself with a fresh
    // version instead of waiting for the next keepalive.
    resync_link(sim, link);
    if (self_slot_ != compiler::DenseFwdIndex::kNoSlot) {
      request_trigger(self_slot_, now);
      flush_pending(sim);
    }
  }
}

void ContraSwitch::restart_control_plane() {
  // Reboot: the probe clock restarts from zero and every piece of soft
  // protocol state is lost. Forwarding state relearns from scratch — the
  // next keepalive flood from each origin repopulates the rows.
  probe_clock_.reset();
  std::fill(row_present_.begin(), row_present_.end(), 0);
  for (pg::MetricsVector& mv : neighbor_mv_) mv = pg::MetricsVector{};
  reference_fwdt_.clear();
  source_pins_.clear();
  // The flowlet table and failure detector model dataplane/port hardware and
  // survive a control-CPU reboot.
  if (!triggered()) {
    // Periodic modes have no withdraw machinery; the stale caches just die
    // (refresh rounds re-announce everything within suppress_refresh_rounds
    // periods anyway).
    for (AdvertState& adv : adverts_) adv.valid = false;
    return;
  }
  // Triggered engine: local-scan baselines and hold-down bookkeeping reset…
  std::fill(probe_link_alive_.begin(), probe_link_alive_.end(), 1);
  std::fill(link_util_adv_.begin(), link_util_adv_.end(), 0.0);
  std::fill(holddown_until_.begin(), holddown_until_.end(), 0.0);
  // …and the advert ledger is replayed rather than silently kept: every
  // destination slot goes pending, so the next control tick runs emit_deltas
  // across the whole table — the keepalive-equivalent resync flood. With the
  // RIB empty that means withdrawing each standing advert at its recorded
  // version (see emit_deltas), telling neighbors *now* that their routes
  // through this switch are gone instead of letting the stale caches
  // suppress the resync until metric expiry. The origin slot is skipped: the
  // clock's next tick is version 1, a keepalive round, which floods anyway.
  pending_count_ = 0;
  for (uint32_t slot = 0; slot < trigger_pending_.size(); ++slot) {
    if (slot == self_slot_) {
      trigger_pending_[slot] = 0;
      continue;
    }
    trigger_pending_[slot] = 1;
    ++pending_count_;
  }
}

void ContraSwitch::handle_packet(Simulator& sim, Packet&& packet, LinkId in_link) {
  // Tests drive handle_packet without start(); bind on first packet.
  if (telemetry_ == nullptr) bind_telemetry(sim);
  if (packet.kind == PacketKind::kProbe) {
    process_probe(sim, std::move(packet), in_link);
  } else {
    forward_data(sim, std::move(packet), in_link);
  }
}

void ContraSwitch::process_probe(Simulator& sim, Packet&& packet, LinkId in_link) {
  ++stats_.probes_received;
  failure_detector_.note_probe(in_link, sim.now());
  sim::ProbeFields& probe = *packet.probe;
  obs::Telemetry& tel = *telemetry_;
  tel.metrics().add(tel.core().probes_received);
  tel.metrics().add(tel.core().probe_bytes_rx, packet.size_bytes);
  if (tel.tracing()) trace_probe(obs::Ev::kProbeRx, probe, sim.now());
  // Triggered mode needs the neighbor's advert as received (pre-extension)
  // so utilization drift can later re-derive the row without a fresh probe.
  const pg::MetricsVector rx_mv = probe.mv;

  // UPDATEMVEC: probes travel opposite to traffic, so the traffic-direction
  // link is the reverse of the arrival link. Latency counts propagation plus
  // the current queueing backlog.
  const LinkId traffic_link = sim.topo().link(in_link).reverse;
  const sim::Link& link = sim.link(traffic_link);
  // path.lat is carried in microseconds: switch metric registers are Q16.16
  // fixed point, where sub-microsecond second-denominated values underflow.
  // Latency here is propagation delay; queueing pressure is what path.util
  // captures (adding the instantaneous queue would couple the latency metric
  // to probe-burst noise). Utilization is quantized like a hardware register,
  // and a policy that never reads path.util carries 0 instead of the live
  // EWMA (see policy_carries_util_) so content comparisons stay stable.
  double util = policy_carries_util_ ? link.utilization() : 0.0;
  if (options_.util_quantum > 0) {
    util = std::round(util / options_.util_quantum) * options_.util_quantum;
  }
  probe.mv.extend(util, link.delay_s() * 1e6);

  // NEXTPGNODE: the local virtual node implied by the carried tag, one load
  // from the per-switch flattened transition table.
  const uint32_t incoming_tag = probe.tag;
  const uint32_t local_tag =
      incoming_tag < tag_step_.size() ? tag_step_[incoming_tag] : pg::kInvalidTag;
  if (local_tag == pg::kInvalidTag) {
    ++stats_.probes_dropped_no_pg;
    tel.metrics().add(tel.core().probes_rejected_no_pg);
    if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectNoPg, probe, sim.now());
    return;
  }

  // Indexed FwdT update: the compiler proved the key universe, so the row is
  // a computed offset into the flat register array — no hashing, no insert.
  const uint32_t row = dense_->row(probe.origin, local_tag, probe.pid);
  if (row == compiler::DenseFwdIndex::kNoRow) {
    // Out-of-universe key. Unreachable in a correctly compiled network (the
    // tag step above already rejected non-PG tags, and only destinations
    // originate probes), so count it loudly and trip debug builds — a hit
    // here means the compiler's universe and the dataplane disagree.
    ++stats_.dense_fallback_hits;
    tel.metrics().add(tel.core().dense_fallback_hits);
    if (tel.tracing()) trace_probe(obs::Ev::kDenseFallback, probe, sim.now());
    assert(!options_.assert_on_dense_fallback &&
           "probe key outside the compiled dense FwdT universe");
    return;
  }
  // Delta-suppression round phase (§5.2 semantics): rounds are identified by
  // the version the probe carries, so every switch in the network agrees on
  // which rounds are refresh rounds with no extra state or clock sync. On a
  // refresh round the protocol below is exactly the unsuppressed one. Under
  // the triggered engine (§12) the keepalive rounds play that role instead,
  // and the PR 5 receiver deferral is replaced by hold-down damping.
  const bool trig = triggered();
  const bool suppression_active = !trig && options_.probe_suppression &&
                                  options_.versioned_probes &&
                                  options_.suppress_refresh_rounds > 1;
  const bool refresh_round =
      trig ? keepalive_version(probe.version)
           : !suppression_active || probe.version % options_.suppress_refresh_rounds == 0;
  if (trig && refresh_round) {
    ++stats_.keepalive_probes;
    tel.metrics().add(tel.core().keepalive_probes);
  }

  FwdEntry& entry = rows_[row];

  // Poison advert (§12): our successor for this row lost it. Withdraw ours
  // too — split-horizon scoped (only the successor's word counts) and
  // version-guarded (an in-flight stale poison cannot kill a newer entry).
  if (probe.withdraw) {
    // The poison names one row at the sender (its local tag). It only kills
    // our entry if that is the exact row we adopted (link + ntag), not some
    // other row the same neighbor holds for this destination.
    if (!trig || !row_present_[row] || entry.nhop != traffic_link ||
        entry.ntag != incoming_tag || entry.withdrawn || probe.version < entry.version) {
      return;
    }
    entry.withdrawn = true;
    entry.version = probe.version;
    entry.updated_at = sim.now();
    if (options_.reference_tables) {
      reference_fwdt_[FwdKey{probe.origin, local_tag, probe.pid}] = entry;
    }
    if (tel.tracing()) {
      sim::ProbeFields withdrawn = probe;
      withdrawn.tag = local_tag;
      trace_probe(obs::Ev::kProbeWithdraw, withdrawn, sim.now());
    }
    if (probe.origin < dense_->dst_slot.size()) {
      request_trigger(dense_->dst_slot[probe.origin], sim.now());
      flush_pending(sim);  // propagate the failure wave within this event
    }
    return;
  }

  bool propagate = true;
  bool content_changed = true;
  bool echo_accept = false;
  if (row_present_[row]) {
    bool version_reset = false;
    if (options_.versioned_probes && probe.version < entry.version) {
      // DSDV-style sequence recovery: a regressed version is normally a stale
      // in-flight probe (§5.1), but when the stored entry has had no accepted
      // refresh for a whole staleness window the origin's clock must have
      // restarted — adopt the probe instead of ignoring the origin forever.
      // Triggered mode scales the window by the keepalive cadence.
      const double staleness_s =
          options_.version_reset_periods * options_.probe_period_s * window_scale();
      version_reset = staleness_s > 0 && sim.now() - entry.updated_at > staleness_s;
      if (!version_reset) {
        ++stats_.probes_dropped_version;  // outdated probe (§5.1)
        tel.metrics().add(tel.core().probes_rejected_stale);
        if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectStale, probe, sim.now());
        return;
      }
    }
    // Triggered mode: a withdrawn row is a DSDV-style version floor. Only a
    // strictly newer flood — one the origin emitted after the poison's
    // version was already in circulation — may resurrect it; anything at or
    // below the floor is a stale pre-failure advert still echoing around the
    // network, and adopting one restarts count-to-infinity through the dead
    // region (the loop that poisoning exists to cut).
    const bool resurrect = trig && entry.withdrawn && probe.version > entry.version;
    if (trig && entry.withdrawn && !resurrect && !version_reset) {
      ++stats_.probes_dropped_version;
      tel.metrics().add(tel.core().probes_rejected_stale);
      if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectStale, probe, sim.now());
      return;
    }
    const bool fresher = version_reset || resurrect ||
                         (options_.versioned_probes && probe.version > entry.version);
    // Steady-state fast path: a probe carrying exactly the stored mv has
    // exactly the stored rank (f is a pure function of (pid, mv)), so the
    // rank evaluation — the priciest step of probe processing — is skipped
    // for the refresh traffic that dominates a converged network.
    const bool same_content = probe.mv.util == entry.mv.util &&
                              probe.mv.lat == entry.mv.lat && probe.mv.len == entry.mv.len;
    lang::Rank new_rank;
    bool better = false;
    bool rank_changed = false;
    if (!same_content) {
      new_rank = evaluator_->propagation_rank(probe.pid, probe.mv);
      better = new_rank < entry.rank;  // entry.rank caches f(pid, entry.mv)
      rank_changed = new_rank != entry.rank;
    }
    // Receiver-side delta-suppression: between refresh rounds, a fresher
    // probe that does not strictly improve the stored rank is deferred — the
    // entry keeps its content and the probe is not re-flooded. Without this,
    // a worse path whose upstream never suppresses (a probe origin is one)
    // would be re-adopted on version freshness every round while the better
    // path's unchanged re-announcement sits suppressed upstream, making the
    // row oscillate. Worse news (failures, genuine degradations) still lands
    // within suppress_refresh_rounds periods via the full refresh flood, and
    // improvements propagate immediately through the `better` path below.
    // (Triggered mode does not defer: senders only emit on change, and the
    // per-(switch,dst) hold-down is the oscillation damper.)
    if (!trig && !refresh_round && fresher && !version_reset && !better) {
      ++stats_.probes_suppressed;
      tel.metrics().add(tel.core().probes_suppressed);
      if (tel.tracing()) {
        sim::ProbeFields suppressed = probe;
        suppressed.tag = local_tag;
        trace_probe(obs::Ev::kProbeSuppress, suppressed, sim.now());
      }
      return;
    }
    // Without versions this is classic distance-vector: the current next hop
    // may always overwrite its own advertisement (worse news included), but
    // other neighbors must strictly improve — the §3 loop-prone strawman.
    // The triggered engine extends the successor rule to same-version probes
    // (resyncs and drift re-adverts reuse the version they were learned at).
    // "Same successor" means the probe describes the row we adopted: same
    // link AND same sender-side row (the carried tag names the sender's row,
    // and ours recorded it as ntag). The link alone is not enough — a
    // neighbor can advertise several rows for one destination (e.g. a probe
    // origin re-flooding a loop path learned for its own address), and only
    // the adopted one may overwrite without winning on rank.
    const bool same_successor = entry.nhop == traffic_link && entry.ntag == incoming_tag;
    const bool successor_update =
        trig && same_successor && probe.version >= entry.version;
    if (!fresher && !better && !successor_update &&
        !(!options_.versioned_probes && same_successor)) {
      ++stats_.probes_dropped_worse;
      tel.metrics().add(tel.core().probes_rejected_rank);
      if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectRank, probe, sim.now());
      return;
    }
    // A same-successor refresh with an unchanged rank keeps the entry alive
    // but is not re-advertised (DV re-advertises on change, not on refresh).
    propagate = fresher || better || rank_changed;
    echo_accept = trig && !fresher && !better;
    content_changed = !same_content || entry.ntag != incoming_tag ||
                      entry.nhop != traffic_link || entry.withdrawn;
    entry.mv = probe.mv;
    entry.ntag = incoming_tag;
    entry.nhop = traffic_link;
    entry.version = probe.version;
    // A pure successor-rule accept (same version, not better) adopts the
    // content but must NOT extend the row's liveness: an origin that went
    // unreachable stops minting versions, and if same-version echoes kept
    // refreshing updated_at a count-to-infinity loop would hold its zombie
    // rows alive forever. Frozen liveness lets them expire, which turns them
    // into poisons (emit_deltas) and ends the loop. Genuinely fresh floods
    // and rank improvements refresh as before, and the unversioned engine
    // (classic distance-vector) keeps its refresh-on-successor semantics.
    if (fresher || better || !options_.versioned_probes) entry.updated_at = sim.now();
    entry.withdrawn = false;
    if (!same_content) entry.rank = std::move(new_rank);
  } else {
    row_present_[row] = 1;
    entry.mv = probe.mv;
    entry.ntag = incoming_tag;
    entry.nhop = traffic_link;
    entry.version = probe.version;
    entry.updated_at = sim.now();
    entry.rank = evaluator_->propagation_rank(probe.pid, probe.mv);
    entry.withdrawn = false;
  }
  if (trig) neighbor_mv_[row] = rx_mv;
  if (options_.reference_tables) {
    // Shadow hash-map table (PR 4 layout): same accept path, same end state;
    // check_reference_parity() diffs it against the dense rows.
    reference_fwdt_[FwdKey{probe.origin, local_tag, probe.pid}] = entry;
  }
  ++stats_.fwdt_updates;
  tel.metrics().add(tel.core().probes_accepted);
  tel.metrics().add(tel.core().fwdt_updates);
  tel.metrics().observe(tel.core().probe_path_len, probe.mv.len);
  if (tel.tracing()) {
    sim::ProbeFields accepted = probe;
    accepted.tag = local_tag;  // record against the adopted local virtual node
    trace_probe(obs::Ev::kProbeAccept, accepted, sim.now());
    note_route_flip(probe.origin, sim.now());
  }

  // Triggered engine, non-keepalive rounds: accepted deltas do not flood
  // directly. The destination is marked dirty and emit_deltas diffs the
  // rows' standing advertisements — coalescing concurrent changes and
  // respecting the hold-down damper. Keepalive rounds fall through to the
  // exact legacy flood below (the fixed-point-pinning backstop) — but only
  // for the wavefront (`fresher`) and genuine improvements (`better`), the
  // two accept classes whose legacy relay provably terminates (one fresh
  // arrival per row per round; rank strictly decreases along `better`
  // chains). A pure successor-rule echo (same version, not better) must
  // take the damped delta path even on keepalive rounds: under live
  // traffic its rank re-churns on every pass — probe bytes move the very
  // util EWMA being advertised — and relaying each repaint re-excites the
  // echo's own loop, a self-sustaining probe storm the quiesced benches
  // never see.
  if (trig && (!refresh_round || echo_accept)) {
    if ((propagate || content_changed) && probe.origin < dense_->dst_slot.size()) {
      request_trigger(dense_->dst_slot[probe.origin], sim.now());
      flush_pending(sim);
    }
    return;
  }

  // Sender-side delta-suppression: even an accepted update is not worth
  // re-flooding when the quantized advertisement for this row — the carried
  // mv plus the stored next tag / next hop — matches what was last sent
  // (e.g. a sub-quantum latency improvement). Refresh rounds always
  // re-broadcast, which keeps downstream failure detectors and metric expiry
  // fed and pins the steady-state fixed point to the unsuppressed
  // protocol's: every refresh round replays the full flood, so the per-row
  // winner is decided by exactly the legacy comparisons.
  if (propagate && !refresh_round) {
    const double lat_quantum = options_.suppress_lat_quantum_us;
    const double lat_q = lat_quantum > 0
                             ? std::round(probe.mv.lat / lat_quantum) * lat_quantum
                             : probe.mv.lat;
    const AdvertState& adv = adverts_[row];
    if (adv.valid && adv.util == probe.mv.util && adv.lat == lat_q &&
        adv.len == probe.mv.len && adv.ntag == incoming_tag && adv.nhop == traffic_link) {
      ++stats_.probes_suppressed;
      tel.metrics().add(tel.core().probes_suppressed);
      if (tel.tracing()) {
        sim::ProbeFields suppressed = probe;
        suppressed.tag = local_tag;
        trace_probe(obs::Ev::kProbeSuppress, suppressed, sim.now());
      }
      propagate = false;
    }
  }
  if (!propagate) return;
  if (suppression_active || trig) {
    // Record what is about to go out as this row's standing advertisement
    // (triggered mode: keepalive floods must refresh it so the next
    // emit_deltas diffs against what neighbors actually heard).
    AdvertState& adv = adverts_[row];
    const double lat_quantum = options_.suppress_lat_quantum_us;
    adv.util = probe.mv.util;
    adv.lat = lat_quantum > 0 ? std::round(probe.mv.lat / lat_quantum) * lat_quantum
                              : probe.mv.lat;
    adv.len = probe.mv.len;
    adv.ntag = incoming_tag;
    adv.nhop = traffic_link;
    adv.version = probe.version;
    adv.valid = true;
  }

  // MULTICASTPROBE along PG out-edges of the local virtual node. The pure
  // back-edge (same link, same virtual node it just came from) is skipped —
  // such a probe is strictly stale at the sender.
  const uint32_t pg_node = pg_node_of_tag_[local_tag];
  if (pg_node == pg::kInvalidPgNode) return;
  probe.tag = local_tag;
  for (const pg::PgEdge& edge : compiled_->graph.out_edges(pg_node)) {
    if (edge.link == traffic_link && edge.to_tag == incoming_tag) continue;
    Packet copy = packet;
    copy.id = sim.next_packet_id();
    ++stats_.probes_propagated;
    sim.send_on_link(edge.link, std::move(copy));
  }
}

bool ContraSwitch::entry_usable(const FwdEntry& entry, sim::Time now) const {
  if (entry.withdrawn) return false;  // poisoned (§12) until a probe resurrects it
  if (now - entry.updated_at >
      options_.metric_expiry_periods * options_.probe_period_s * window_scale()) {
    return false;  // metric expiration (§5.4; ×keepalive cadence when triggered)
  }
  // The next hop is presumed failed when its probe direction went silent.
  const LinkId probe_dir = compiled_->graph.topo().link(entry.nhop).reverse;
  return !failure_detector_.presumed_failed(probe_dir, now);
}

const ContraSwitch::FwdEntry* ContraSwitch::fwd_entry(NodeId dst, uint32_t tag,
                                                      uint32_t pid) const {
  const uint32_t row = dense_->row(dst, tag, pid);
  if (row == compiler::DenseFwdIndex::kNoRow || !row_present_[row]) return nullptr;
  return &rows_[row];
}

std::optional<ContraSwitch::BestChoice> ContraSwitch::best_choice(NodeId dst,
                                                                  sim::Time now) const {
  // BestT scan = one cache-linear pass over the destination's contiguous
  // (tag, pid) slice of the register array, in ascending (tag, pid) order.
  if (dst >= dense_->dst_slot.size()) return std::nullopt;
  const uint32_t slot = dense_->dst_slot[dst];
  if (slot == compiler::DenseFwdIndex::kNoSlot) return std::nullopt;
  const uint32_t begin = dense_->slice_begin(slot);
  const uint32_t width = dense_->slice_width();
  const uint32_t num_pids = dense_->num_pids;
  std::optional<BestChoice> best;
  for (uint32_t off = 0; off < width; ++off) {
    const uint32_t row = begin + off;
    if (!row_present_[row]) continue;
    const FwdEntry& entry = rows_[row];
    if (!entry_usable(entry, now)) continue;
    const uint32_t tag = dense_->slot_tags[off / num_pids];
    lang::Rank rank = evaluator_->selection_rank(tag, entry.mv);
    if (rank.is_infinite()) continue;
    if (!best || rank < best->rank) {
      best = BestChoice{tag, off % num_pids, std::move(rank), entry.nhop};
    }
  }
  return best;
}

void ContraSwitch::forward_data(Simulator& sim, Packet&& packet, LinkId in_link) {
  const sim::Time now = sim.now();
  if (sim.trace_enabled()) packet.trace.push_back(static_cast<uint16_t>(self_));

  if (in_link == sim::kFromHost) {
    if (packet.dst_switch == self_) {  // same-rack delivery
      ++stats_.data_to_host;
      sim.send_to_host(packet.dst_host, std::move(packet));
      return;
    }
    // First switch: BestT selection stamps (tag, pid) — the s() rank over
    // every candidate entry for this destination. The selection itself is
    // flowlet-pinned so a flowlet stays on one (tag, pid) path.
    const uint32_t fid = util::hash_five_tuple(packet.tuple);
    auto pin = source_pins_.find(fid);
    // Strict <: a gap of exactly the timeout expires the pin, matching
    // FlowletTable::lookup's >= expiry (§5.2 boundary semantics).
    if (pin != source_pins_.end() && now - pin->second.last_seen < options_.flowlet_timeout_s) {
      packet.routing.tag = pin->second.tag;
      packet.routing.pid = pin->second.pid;
      pin->second.last_seen = now;
    } else {
      const auto choice = best_choice(packet.dst_switch, now);
      if (!choice) {
        ++stats_.data_dropped_no_route;
        telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
        return;
      }
      packet.routing.tag = choice->tag;
      packet.routing.pid = choice->pid;
      source_pins_[fid] = SourcePin{choice->tag, choice->pid, now};
    }
    packet.size_bytes += options_.tag_overhead_bytes;  // tag+pid header on the wire
    packet.routing.traffic_class = options_.traffic_class_id;
    packet.routing.stamped = true;
  } else {
    // Exact transit loop accounting (simulator-side ground truth): the same
    // packet id crossing this switch twice within the window is a loop.
    if (now - recent_packets_reset_ > 0.01 || recent_packets_.size() >= kRecentPacketsCap) {
      recent_packets_.clear();
      recent_packets_reset_ = now;
    }
    auto [it, inserted] = recent_packets_.try_emplace(packet.id, uint8_t{0});
    if (!inserted && it->second == 0) {
      ++stats_.looped_packets_seen;
      it->second = 1;
    }
  }

  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }

  const uint32_t fid = util::hash_five_tuple(packet.tuple);
  const FlowletKey fkey = options_.policy_aware_flowlets
                              ? FlowletKey{packet.routing.tag, packet.routing.pid, fid}
                              : FlowletKey{0, 0, fid};

  // Lazy loop breaking (§5.5): a TTL spread beyond threshold flushes the
  // flowlet entry so the next lookup re-rates against current FwdT state.
  if (options_.loop_detection && in_link != sim::kFromHost &&
      loop_detector_.observe(packet.loop_signature(), packet.routing.ttl, now)) {
    ++stats_.loops_broken;
    flowlets_.flush(fkey, now);
  }

  LinkId nhop = topology::kInvalidLink;
  uint32_t ntag = pg::kInvalidTag;

  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr) {
    const LinkId probe_dir = sim.topo().link(pinned->nhop).reverse;
    if (failure_detector_.presumed_failed(probe_dir, now)) {
      flowlets_.flush(fkey, now);  // §5.4: expire flowlets over failed links
      pinned = nullptr;
    }
  }

  if (pinned != nullptr) {
    nhop = pinned->nhop;
    if (options_.policy_aware_flowlets) {
      ntag = pinned->ntag;
    } else {
      // Naive flowlet pinning carries only the next hop; the tag must still
      // follow the actual path. A transition outside the PG is a policy
      // violation (the Fig. 8a scenario) — count and drop.
      ntag = compiled_->graph.next_tag(packet.routing.tag, sim.topo().link(nhop).to);
      if (ntag == pg::kInvalidTag) {
        ++stats_.data_dropped_no_route;
        telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
        flowlets_.flush(fkey, now);
        return;
      }
    }
    flowlets_.touch(fkey, now);
  } else {
    // Out-of-universe data keys (e.g. traffic addressed to a non-destination)
    // behave exactly like a missing entry always did: a no-route drop.
    const uint32_t row =
        dense_->row(packet.dst_switch, packet.routing.tag, packet.routing.pid);
    if (row == compiler::DenseFwdIndex::kNoRow || !row_present_[row] ||
        !entry_usable(rows_[row], now)) {
      ++stats_.data_dropped_no_route;
      telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
      return;
    }
    nhop = rows_[row].nhop;
    ntag = rows_[row].ntag;
    flowlets_.pin(fkey, FlowletEntry{nhop, ntag, packet.routing.pid, now}, now);
  }

  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    telemetry_->metrics().add(telemetry_->core().data_dropped_ttl);
    return;
  }
  --packet.routing.ttl;
  packet.routing.tag = ntag;
  ++stats_.data_forwarded;
  telemetry_->metrics().add(telemetry_->core().data_forwarded);
  sim.send_on_link(nhop, std::move(packet));
}

LinkId ContraSwitch::fluid_next_hop(Simulator& sim, NodeId dst_switch,
                                    const util::FiveTuple& tuple, sim::RoutingState& routing) {
  // forward_data's selection logic, side-effect free: the link the flow's
  // next packet would leave on right now. No pins are created or refreshed,
  // no flowlets pinned/touched/flushed, no stats counted — fluid flows must
  // not perturb the packet-level state the sampled subset still exercises.
  const sim::Time now = sim.now();
  if (!routing.stamped) {
    const uint32_t fid = util::hash_five_tuple(tuple);
    auto pin = source_pins_.find(fid);
    if (pin != source_pins_.end() && now - pin->second.last_seen < options_.flowlet_timeout_s) {
      routing.tag = pin->second.tag;
      routing.pid = pin->second.pid;
    } else {
      const auto choice = best_choice(dst_switch, now);
      if (!choice) return topology::kInvalidLink;
      routing.tag = choice->tag;
      routing.pid = choice->pid;
    }
    routing.traffic_class = options_.traffic_class_id;
    routing.stamped = true;
  }

  const uint32_t fid = util::hash_five_tuple(tuple);
  const FlowletKey fkey = options_.policy_aware_flowlets
                              ? FlowletKey{routing.tag, routing.pid, fid}
                              : FlowletKey{0, 0, fid};
  LinkId nhop = topology::kInvalidLink;
  uint32_t ntag = pg::kInvalidTag;
  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr) {
    const LinkId probe_dir = sim.topo().link(pinned->nhop).reverse;
    if (failure_detector_.presumed_failed(probe_dir, now)) pinned = nullptr;
  }
  if (pinned != nullptr) {
    nhop = pinned->nhop;
    if (options_.policy_aware_flowlets) {
      ntag = pinned->ntag;
    } else {
      ntag = compiled_->graph.next_tag(routing.tag, sim.topo().link(nhop).to);
      if (ntag == pg::kInvalidTag) return topology::kInvalidLink;
    }
  } else {
    const uint32_t row = dense_->row(dst_switch, routing.tag, routing.pid);
    if (row == compiler::DenseFwdIndex::kNoRow || !row_present_[row] ||
        !entry_usable(rows_[row], now)) {
      return topology::kInvalidLink;
    }
    nhop = rows_[row].nhop;
    ntag = rows_[row].ntag;
  }
  routing.tag = ntag;
  return nhop;
}

std::string ContraSwitch::render_tables(sim::Time now) const {
  const topology::Topology& topo = compiled_->graph.topo();
  std::ostringstream out;
  out << "FwdT @ " << topo.name(self_) << " (* = BestT choice)\n";
  out << "  [dst, tag, pid] -> (util, lat_us, len), ntag, nhop, version\n";

  // The dense layout is already in (dst, tag, pid) order, so rendering is a
  // single pass over each destination's slice — no sort, and BestT is
  // computed once per destination instead of once per row.
  const uint32_t width = dense_->slice_width();
  const uint32_t num_pids = dense_->num_pids;
  for (uint32_t slot = 0; slot < dense_->destinations.size(); ++slot) {
    const NodeId dst = dense_->destinations[slot];
    const auto best = best_choice(dst, now);
    const uint32_t begin = dense_->slice_begin(slot);
    for (uint32_t off = 0; off < width; ++off) {
      if (!row_present_[begin + off]) continue;
      const FwdEntry& entry = rows_[begin + off];
      const uint32_t tag = dense_->slot_tags[off / num_pids];
      const uint32_t pid = off % num_pids;
      const bool starred = best && best->tag == tag && best->pid == pid;
      char line[192];
      std::snprintf(line, sizeof line,
                    "  [%s, t%u, p%u] -> (%.3f, %.2f, %.0f), t%u, %s, v%llu%s%s\n",
                    topo.name(dst).c_str(), tag, pid, entry.mv.util, entry.mv.lat,
                    entry.mv.len, entry.ntag, topo.name(topo.link(entry.nhop).to).c_str(),
                    static_cast<unsigned long long>(entry.version),
                    entry_usable(entry, now) ? "" : " [expired]", starred ? " *" : "");
      out << line;
    }
  }
  return out.str();
}

std::string ContraSwitch::check_reference_parity(sim::Time now) const {
  if (!options_.reference_tables) return "reference tables are not enabled";
  const topology::Topology& topo = compiled_->graph.topo();
  char buf[160];

  // Dense -> reference: every present row must shadow an identical map entry.
  std::string diff;
  size_t present = 0;
  for_each_fwd_entry([&](NodeId dst, uint32_t tag, uint32_t pid, const FwdEntry& entry) {
    ++present;
    if (!diff.empty()) return;
    const auto it = reference_fwdt_.find(FwdKey{dst, tag, pid});
    if (it == reference_fwdt_.end()) {
      std::snprintf(buf, sizeof buf, "sw %s: dense row [dst=%u,t%u,p%u] missing from reference",
                    topo.name(self_).c_str(), dst, tag, pid);
      diff = buf;
      return;
    }
    const FwdEntry& ref = it->second;
    if (ref.mv.util != entry.mv.util || ref.mv.lat != entry.mv.lat ||
        ref.mv.len != entry.mv.len || ref.ntag != entry.ntag || ref.nhop != entry.nhop ||
        ref.version != entry.version || ref.updated_at != entry.updated_at) {
      std::snprintf(buf, sizeof buf, "sw %s: dense/reference contents differ at [dst=%u,t%u,p%u]",
                    topo.name(self_).c_str(), dst, tag, pid);
      diff = buf;
    }
  });
  if (!diff.empty()) return diff;
  // Reference -> dense: equal sizes close the bijection (no extra map keys).
  if (present != reference_fwdt_.size()) {
    std::snprintf(buf, sizeof buf, "sw %s: %zu dense rows vs %zu reference entries",
                  topo.name(self_).c_str(), present, reference_fwdt_.size());
    return buf;
  }

  // BestT: the dense slice scan must pick a winner of the same rank the
  // reference map yields. Ranks (not exact (tag, pid)) are compared — ties
  // are broken by iteration order, which is unspecified for the hash map.
  for (const NodeId dst : dense_->destinations) {
    const auto dense_best = best_choice(dst, now);
    std::optional<lang::Rank> ref_best;
    for (const auto& [key, entry] : reference_fwdt_) {
      if (key.origin != dst || !entry_usable(entry, now)) continue;
      lang::Rank rank = evaluator_->selection_rank(key.tag, entry.mv);
      if (rank.is_infinite()) continue;
      if (!ref_best || rank < *ref_best) ref_best = std::move(rank);
    }
    if (dense_best.has_value() != ref_best.has_value() ||
        (dense_best && dense_best->rank != *ref_best)) {
      std::snprintf(buf, sizeof buf, "sw %s: BestT divergence for dst %u (%s vs %s winner)",
                    topo.name(self_).c_str(), dst, dense_best ? "dense" : "no-dense",
                    ref_best ? "reference" : "no-reference");
      return buf;
    }
  }
  return "";
}

std::vector<ContraSwitch*> install_contra_network(Simulator& sim,
                                                  const compiler::CompileResult& compiled,
                                                  const pg::PolicyEvaluator& evaluator,
                                                  ContraSwitchOptions options) {
  std::vector<ContraSwitch*> switches;
  switches.reserve(sim.topo().num_nodes());
  for (NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<ContraSwitch>(compiled, evaluator, n, options);
    ContraSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
