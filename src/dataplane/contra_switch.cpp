#include "dataplane/contra_switch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "util/logging.h"

namespace contra::dataplane {

using sim::Packet;
using sim::PacketKind;
using sim::Simulator;
using topology::LinkId;
using topology::NodeId;

ContraSwitch::ContraSwitch(const compiler::CompileResult& compiled,
                           const pg::PolicyEvaluator& evaluator, NodeId self,
                           ContraSwitchOptions options)
    : compiled_(&compiled),
      evaluator_(&evaluator),
      self_(self),
      options_(options),
      flowlets_(options.flowlet_timeout_s),
      loop_detector_(options.loop_table_slots, options.loop_ttl_threshold),
      probe_clock_(options.probe_period_s),
      failure_detector_(options.failure_detect_periods * options.probe_period_s) {
  // Pre-size the hot maps from the compiled bounds (§4.3 state accounting):
  // FwdT converges to one entry per (destination, local tag, pid), BestT's
  // scan index to one bucket per destination. Reserving up front keeps the
  // warm-up phase from rehashing mid-run — rehashes are the only allocation
  // these maps would otherwise do after convergence.
  const compiler::StateFootprint& footprint = compiled.switches[self].footprint;
  fwdt_.reserve(footprint.fwdt_entries);
  uint64_t num_destinations = 0;
  for (const compiler::SwitchConfig& cfg : compiled.switches) {
    if (cfg.is_destination) ++num_destinations;
  }
  best_index_.reserve(num_destinations);
}

void ContraSwitch::bind_telemetry(Simulator& sim) {
  telemetry_ = &sim.telemetry();
  flowlets_.bind_telemetry(telemetry_, self_);
  loop_detector_.bind_telemetry(telemetry_, self_);
  failure_detector_.bind_telemetry(telemetry_, self_);
}

void ContraSwitch::start(Simulator& sim) {
  bind_telemetry(sim);
  if (compiled_->switches[self_].is_destination) {
    // Jitter-free periodic origination; all destinations share the phase,
    // which keeps rounds comparable (the paper's probes are periodic too).
    originate_probes(sim);
  }
}

void ContraSwitch::trace_probe(obs::Ev ev, const sim::ProbeFields& probe, double t) {
  obs::TraceRecord r;
  r.t = t;
  r.ev = ev;
  r.sw = self_;
  r.dst = probe.origin;
  r.tag = probe.tag;
  r.pid = probe.pid;
  r.version = probe.version;
  r.value = probe.mv.len;
  telemetry_->emit(r);
}

void ContraSwitch::note_route_flip(NodeId dst, sim::Time now) {
  const auto choice = best_choice(dst, now);
  if (!choice) return;
  auto [it, inserted] = last_best_.try_emplace(dst, choice->nhop);
  if (inserted || it->second == choice->nhop) return;
  const LinkId old_nhop = it->second;
  it->second = choice->nhop;
  telemetry_->metrics().add(telemetry_->core().route_flips);
  obs::TraceRecord r;
  r.t = now;
  r.ev = obs::Ev::kRouteFlip;
  r.sw = self_;
  r.dst = dst;
  r.tag = choice->tag;
  r.pid = choice->pid;
  r.link = choice->nhop;
  r.aux = old_nhop;
  telemetry_->emit(r);
}

uint32_t ContraSwitch::probe_wire_bytes() const {
  return options_.probe_base_bytes +
         4 * static_cast<uint32_t>(compiled_->decomposition.attrs.size());
}

void ContraSwitch::originate_probes(Simulator& sim) {
  const uint32_t origin_tag = compiled_->switches[self_].origin_tag;
  const uint64_t version = probe_clock_.advance();
  const uint32_t pg_node = compiled_->graph.node_index(self_, origin_tag);
  if (pg_node != pg::kInvalidPgNode) {
    for (uint32_t pid = 0; pid < evaluator_->num_pids(); ++pid) {
      for (const pg::PgEdge& edge : compiled_->graph.out_edges(pg_node)) {
        Packet probe;
        probe.kind = PacketKind::kProbe;
        probe.id = sim.next_packet_id();
        probe.size_bytes = probe_wire_bytes();
        probe.src_switch = self_;
        probe.probe = sim::ProbeFields{self_, pid, origin_tag, options_.traffic_class_id,
                                       version, pg::MetricsVector{}};
        ++stats_.probes_originated;
        telemetry_->metrics().add(telemetry_->core().probes_originated);
        if (telemetry_->tracing()) trace_probe(obs::Ev::kProbeOrig, *probe.probe, sim.now());
        sim.send_on_link(edge.link, std::move(probe));
      }
    }
  }
  sim.events().schedule_in(options_.probe_period_s, [this, &sim] { originate_probes(sim); });
}

void ContraSwitch::handle_packet(Simulator& sim, Packet&& packet, LinkId in_link) {
  // Tests drive handle_packet without start(); bind on first packet.
  if (telemetry_ == nullptr) bind_telemetry(sim);
  if (packet.kind == PacketKind::kProbe) {
    process_probe(sim, std::move(packet), in_link);
  } else {
    forward_data(sim, std::move(packet), in_link);
  }
}

void ContraSwitch::process_probe(Simulator& sim, Packet&& packet, LinkId in_link) {
  ++stats_.probes_received;
  failure_detector_.note_probe(in_link, sim.now());
  sim::ProbeFields& probe = *packet.probe;
  obs::Telemetry& tel = *telemetry_;
  tel.metrics().add(tel.core().probes_received);
  if (tel.tracing()) trace_probe(obs::Ev::kProbeRx, probe, sim.now());

  // UPDATEMVEC: probes travel opposite to traffic, so the traffic-direction
  // link is the reverse of the arrival link. Latency counts propagation plus
  // the current queueing backlog.
  const LinkId traffic_link = sim.topo().link(in_link).reverse;
  const sim::Link& link = sim.link(traffic_link);
  // path.lat is carried in microseconds: switch metric registers are Q16.16
  // fixed point, where sub-microsecond second-denominated values underflow.
  // Latency here is propagation delay; queueing pressure is what path.util
  // captures (adding the instantaneous queue would couple the latency metric
  // to probe-burst noise). Utilization is quantized like a hardware register.
  double util = link.utilization();
  if (options_.util_quantum > 0) {
    util = std::round(util / options_.util_quantum) * options_.util_quantum;
  }
  probe.mv.extend(util, link.delay_s() * 1e6);

  // NEXTPGNODE: the local virtual node implied by the carried tag.
  const uint32_t incoming_tag = probe.tag;
  const uint32_t local_tag = compiled_->graph.next_tag(incoming_tag, self_);
  if (local_tag == pg::kInvalidTag) {
    ++stats_.probes_dropped_no_pg;
    tel.metrics().add(tel.core().probes_rejected_no_pg);
    if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectNoPg, probe, sim.now());
    return;
  }

  const FwdKey key{probe.origin, local_tag, probe.pid};
  auto it = fwdt_.find(key);
  bool propagate = true;
  if (it != fwdt_.end()) {
    FwdEntry& entry = it->second;
    bool version_reset = false;
    if (options_.versioned_probes && probe.version < entry.version) {
      // DSDV-style sequence recovery: a regressed version is normally a stale
      // in-flight probe (§5.1), but when the stored entry has had no accepted
      // refresh for a whole staleness window the origin's clock must have
      // restarted — adopt the probe instead of ignoring the origin forever.
      const double staleness_s = options_.version_reset_periods * options_.probe_period_s;
      version_reset = staleness_s > 0 && sim.now() - entry.updated_at > staleness_s;
      if (!version_reset) {
        ++stats_.probes_dropped_version;  // outdated probe (§5.1)
        tel.metrics().add(tel.core().probes_rejected_stale);
        if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectStale, probe, sim.now());
        return;
      }
    }
    const bool fresher =
        version_reset || (options_.versioned_probes && probe.version > entry.version);
    lang::Rank new_rank = evaluator_->propagation_rank(probe.pid, probe.mv);
    const lang::Rank& old_rank = entry.rank;  // cached f(pid, entry.mv)
    const bool better = new_rank < old_rank;
    // Without versions this is classic distance-vector: the current next hop
    // may always overwrite its own advertisement (worse news included), but
    // other neighbors must strictly improve — the §3 loop-prone strawman.
    const bool same_successor = entry.nhop == traffic_link;
    if (!fresher && !better && !(!options_.versioned_probes && same_successor)) {
      ++stats_.probes_dropped_worse;
      tel.metrics().add(tel.core().probes_rejected_rank);
      if (tel.tracing()) trace_probe(obs::Ev::kProbeRejectRank, probe, sim.now());
      return;
    }
    // A same-successor refresh with an unchanged rank keeps the entry alive
    // but is not re-advertised (DV re-advertises on change, not on refresh).
    propagate = fresher || better || new_rank != old_rank;
    entry.mv = probe.mv;
    entry.ntag = incoming_tag;
    entry.nhop = traffic_link;
    entry.version = probe.version;
    entry.updated_at = sim.now();
    entry.rank = std::move(new_rank);
  } else {
    fwdt_.emplace(key, FwdEntry{probe.mv, incoming_tag, traffic_link, probe.version, sim.now(),
                                evaluator_->propagation_rank(probe.pid, probe.mv)});
    best_index_[probe.origin].emplace_back(local_tag, probe.pid);
  }
  ++stats_.fwdt_updates;
  tel.metrics().add(tel.core().probes_accepted);
  tel.metrics().add(tel.core().fwdt_updates);
  tel.metrics().observe(tel.core().probe_path_len, probe.mv.len);
  if (tel.tracing()) {
    sim::ProbeFields accepted = probe;
    accepted.tag = local_tag;  // record against the adopted local virtual node
    trace_probe(obs::Ev::kProbeAccept, accepted, sim.now());
    note_route_flip(probe.origin, sim.now());
  }
  if (!propagate) return;

  // MULTICASTPROBE along PG out-edges of the local virtual node. The pure
  // back-edge (same link, same virtual node it just came from) is skipped —
  // such a probe is strictly stale at the sender.
  const uint32_t pg_node = compiled_->graph.node_index(self_, local_tag);
  if (pg_node == pg::kInvalidPgNode) return;
  probe.tag = local_tag;
  for (const pg::PgEdge& edge : compiled_->graph.out_edges(pg_node)) {
    if (edge.link == traffic_link && edge.to_tag == incoming_tag) continue;
    Packet copy = packet;
    copy.id = sim.next_packet_id();
    ++stats_.probes_propagated;
    sim.send_on_link(edge.link, std::move(copy));
  }
}

bool ContraSwitch::entry_usable(const FwdEntry& entry, sim::Time now) const {
  if (now - entry.updated_at > options_.metric_expiry_periods * options_.probe_period_s) {
    return false;  // metric expiration (§5.4)
  }
  // The next hop is presumed failed when its probe direction went silent.
  const LinkId probe_dir = compiled_->graph.topo().link(entry.nhop).reverse;
  return !failure_detector_.presumed_failed(probe_dir, now);
}

const ContraSwitch::FwdEntry* ContraSwitch::fwd_entry(NodeId dst, uint32_t tag,
                                                      uint32_t pid) const {
  auto it = fwdt_.find(FwdKey{dst, tag, pid});
  return it == fwdt_.end() ? nullptr : &it->second;
}

std::optional<ContraSwitch::BestChoice> ContraSwitch::best_choice(NodeId dst,
                                                                  sim::Time now) const {
  auto idx = best_index_.find(dst);
  if (idx == best_index_.end()) return std::nullopt;
  std::optional<BestChoice> best;
  for (const auto& [tag, pid] : idx->second) {
    auto it = fwdt_.find(FwdKey{dst, tag, pid});
    if (it == fwdt_.end() || !entry_usable(it->second, now)) continue;
    lang::Rank rank = evaluator_->selection_rank(tag, it->second.mv);
    if (rank.is_infinite()) continue;
    if (!best || rank < best->rank) {
      best = BestChoice{tag, pid, std::move(rank), it->second.nhop};
    }
  }
  return best;
}

void ContraSwitch::forward_data(Simulator& sim, Packet&& packet, LinkId in_link) {
  const sim::Time now = sim.now();
  if (sim.trace_enabled()) packet.trace.push_back(static_cast<uint16_t>(self_));

  if (in_link == sim::kFromHost) {
    if (packet.dst_switch == self_) {  // same-rack delivery
      ++stats_.data_to_host;
      sim.send_to_host(packet.dst_host, std::move(packet));
      return;
    }
    // First switch: BestT selection stamps (tag, pid) — the s() rank over
    // every candidate entry for this destination. The selection itself is
    // flowlet-pinned so a flowlet stays on one (tag, pid) path.
    const uint32_t fid = util::hash_five_tuple(packet.tuple);
    auto pin = source_pins_.find(fid);
    // Strict <: a gap of exactly the timeout expires the pin, matching
    // FlowletTable::lookup's >= expiry (§5.2 boundary semantics).
    if (pin != source_pins_.end() && now - pin->second.last_seen < options_.flowlet_timeout_s) {
      packet.routing.tag = pin->second.tag;
      packet.routing.pid = pin->second.pid;
      pin->second.last_seen = now;
    } else {
      const auto choice = best_choice(packet.dst_switch, now);
      if (!choice) {
        ++stats_.data_dropped_no_route;
        telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
        return;
      }
      packet.routing.tag = choice->tag;
      packet.routing.pid = choice->pid;
      source_pins_[fid] = SourcePin{choice->tag, choice->pid, now};
    }
    packet.size_bytes += options_.tag_overhead_bytes;  // tag+pid header on the wire
    packet.routing.traffic_class = options_.traffic_class_id;
    packet.routing.stamped = true;
  } else {
    // Exact transit loop accounting (simulator-side ground truth): the same
    // packet id crossing this switch twice within the window is a loop.
    if (now - recent_packets_reset_ > 0.01 || recent_packets_.size() >= kRecentPacketsCap) {
      recent_packets_.clear();
      recent_packets_reset_ = now;
    }
    auto [it, inserted] = recent_packets_.try_emplace(packet.id, uint8_t{0});
    if (!inserted && it->second == 0) {
      ++stats_.looped_packets_seen;
      it->second = 1;
    }
  }

  if (packet.dst_switch == self_) {
    ++stats_.data_to_host;
    sim.send_to_host(packet.dst_host, std::move(packet));
    return;
  }

  const uint32_t fid = util::hash_five_tuple(packet.tuple);
  const FlowletKey fkey = options_.policy_aware_flowlets
                              ? FlowletKey{packet.routing.tag, packet.routing.pid, fid}
                              : FlowletKey{0, 0, fid};

  // Lazy loop breaking (§5.5): a TTL spread beyond threshold flushes the
  // flowlet entry so the next lookup re-rates against current FwdT state.
  if (options_.loop_detection && in_link != sim::kFromHost &&
      loop_detector_.observe(packet.loop_signature(), packet.routing.ttl, now)) {
    ++stats_.loops_broken;
    flowlets_.flush(fkey, now);
  }

  LinkId nhop = topology::kInvalidLink;
  uint32_t ntag = pg::kInvalidTag;

  FlowletEntry* pinned = flowlets_.lookup(fkey, now);
  if (pinned != nullptr) {
    const LinkId probe_dir = sim.topo().link(pinned->nhop).reverse;
    if (failure_detector_.presumed_failed(probe_dir, now)) {
      flowlets_.flush(fkey, now);  // §5.4: expire flowlets over failed links
      pinned = nullptr;
    }
  }

  if (pinned != nullptr) {
    nhop = pinned->nhop;
    if (options_.policy_aware_flowlets) {
      ntag = pinned->ntag;
    } else {
      // Naive flowlet pinning carries only the next hop; the tag must still
      // follow the actual path. A transition outside the PG is a policy
      // violation (the Fig. 8a scenario) — count and drop.
      ntag = compiled_->graph.next_tag(packet.routing.tag, sim.topo().link(nhop).to);
      if (ntag == pg::kInvalidTag) {
        ++stats_.data_dropped_no_route;
        telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
        flowlets_.flush(fkey, now);
        return;
      }
    }
    flowlets_.touch(fkey, now);
  } else {
    const FwdKey key{packet.dst_switch, packet.routing.tag, packet.routing.pid};
    auto it = fwdt_.find(key);
    if (it == fwdt_.end() || !entry_usable(it->second, now)) {
      ++stats_.data_dropped_no_route;
      telemetry_->metrics().add(telemetry_->core().data_dropped_no_route);
      return;
    }
    nhop = it->second.nhop;
    ntag = it->second.ntag;
    flowlets_.pin(fkey, FlowletEntry{nhop, ntag, packet.routing.pid, now}, now);
  }

  if (packet.routing.ttl == 0) {
    ++stats_.data_dropped_ttl;
    telemetry_->metrics().add(telemetry_->core().data_dropped_ttl);
    return;
  }
  --packet.routing.ttl;
  packet.routing.tag = ntag;
  ++stats_.data_forwarded;
  telemetry_->metrics().add(telemetry_->core().data_forwarded);
  sim.send_on_link(nhop, std::move(packet));
}

std::string ContraSwitch::render_tables(sim::Time now) const {
  const topology::Topology& topo = compiled_->graph.topo();
  std::ostringstream out;
  out << "FwdT @ " << topo.name(self_) << " (* = BestT choice)\n";
  out << "  [dst, tag, pid] -> (util, lat_us, len), ntag, nhop, version\n";

  // Deterministic order: by destination, tag, pid.
  std::vector<std::pair<FwdKey, const FwdEntry*>> rows;
  rows.reserve(fwdt_.size());
  for (const auto& [key, entry] : fwdt_) rows.emplace_back(key, &entry);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.origin, a.first.tag, a.first.pid) <
           std::tie(b.first.origin, b.first.tag, b.first.pid);
  });

  for (const auto& [key, entry] : rows) {
    const auto best = best_choice(key.origin, now);
    const bool starred = best && best->tag == key.tag && best->pid == key.pid;
    char line[192];
    std::snprintf(line, sizeof line,
                  "  [%s, t%u, p%u] -> (%.3f, %.2f, %.0f), t%u, %s, v%llu%s%s\n",
                  topo.name(key.origin).c_str(), key.tag, key.pid, entry->mv.util,
                  entry->mv.lat, entry->mv.len, entry->ntag,
                  topo.name(topo.link(entry->nhop).to).c_str(),
                  static_cast<unsigned long long>(entry->version),
                  entry_usable(*entry, now) ? "" : " [expired]", starred ? " *" : "");
    out << line;
  }
  return out.str();
}

std::vector<ContraSwitch*> install_contra_network(Simulator& sim,
                                                  const compiler::CompileResult& compiled,
                                                  const pg::PolicyEvaluator& evaluator,
                                                  ContraSwitchOptions options) {
  std::vector<ContraSwitch*> switches;
  switches.reserve(sim.topo().num_nodes());
  for (NodeId n = 0; n < sim.topo().num_nodes(); ++n) {
    auto sw = std::make_unique<ContraSwitch>(compiled, evaluator, n, options);
    ContraSwitch* raw = sw.get();
    if (sim.install_switch(n, std::move(sw))) switches.push_back(raw);
  }
  return switches;
}

}  // namespace contra::dataplane
