#include "dataplane/loop_detector.h"

#include <algorithm>

namespace contra::dataplane {

LoopDetector::LoopDetector(uint32_t slots, uint8_t ttl_spread_threshold)
    : slots_(std::max(1u, slots)), threshold_(ttl_spread_threshold) {}

bool LoopDetector::observe(uint32_t signature, uint8_t ttl) {
  Slot& slot = slots_[signature % slots_.size()];
  if (!slot.valid || slot.signature != signature) {
    // New packet (or hash collision): start fresh — hardware overwrites.
    slot.signature = signature;
    slot.max_ttl = ttl;
    slot.min_ttl = ttl;
    slot.valid = true;
    return false;
  }
  slot.max_ttl = std::max(slot.max_ttl, ttl);
  slot.min_ttl = std::min(slot.min_ttl, ttl);
  if (slot.max_ttl - slot.min_ttl > threshold_) {
    ++loops_detected_;
    slot.valid = false;  // reset so a persistent loop re-triggers later
    return true;
  }
  return false;
}

}  // namespace contra::dataplane
