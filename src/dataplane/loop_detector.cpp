#include "dataplane/loop_detector.h"

#include <algorithm>

namespace contra::dataplane {

LoopDetector::LoopDetector(uint32_t slots, uint8_t ttl_spread_threshold)
    : slots_(std::max(1u, slots)), threshold_(ttl_spread_threshold) {}

bool LoopDetector::observe(uint32_t signature, uint8_t ttl) {
  Slot& slot = slots_[signature % slots_.size()];
  if (!slot.valid || slot.signature != signature) {
    // New packet (or hash collision): start fresh — hardware overwrites.
    slot.signature = signature;
    slot.max_ttl = ttl;
    slot.min_ttl = ttl;
    slot.valid = true;
    return false;
  }
  slot.max_ttl = std::max(slot.max_ttl, ttl);
  slot.min_ttl = std::min(slot.min_ttl, ttl);
  if (slot.max_ttl - slot.min_ttl > threshold_) {
    ++loops_detected_;
    slot.valid = false;  // reset so a persistent loop re-triggers later
    return true;
  }
  return false;
}

bool LoopDetector::observe(uint32_t signature, uint8_t ttl, double now) {
  const uint8_t spread_before = [&] {
    const Slot& slot = slots_[signature % slots_.size()];
    if (!slot.valid || slot.signature != signature) return uint8_t{0};
    const uint8_t hi = std::max(slot.max_ttl, ttl);
    const uint8_t lo = std::min(slot.min_ttl, ttl);
    return static_cast<uint8_t>(hi - lo);
  }();
  const bool looped = observe(signature, ttl);
  if (looped && telemetry_ != nullptr) {
    telemetry_->metrics().add(telemetry_->core().loop_breaks);
    if (telemetry_->tracing()) {
      obs::TraceRecord r;
      r.t = now;
      r.ev = obs::Ev::kLoopBreak;
      r.sw = switch_id_;
      r.aux = signature;
      r.value = static_cast<double>(spread_before);
      telemetry_->emit(r);
    }
  }
  return looped;
}

}  // namespace contra::dataplane
