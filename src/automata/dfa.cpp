#include "automata/dfa.h"

#include <map>
#include <set>
#include <sstream>

#include "automata/minimize.h"

namespace contra::automata {

Dfa::Dfa(uint32_t num_states, uint32_t num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      transitions_(static_cast<size_t>(num_states) * num_symbols, 0),
      accepting_(num_states, false) {}

bool Dfa::accepts(const std::vector<uint32_t>& word) const {
  uint32_t state = start_;
  for (uint32_t symbol : word) state = next(state, symbol);
  return accepting(state);
}

std::string Dfa::to_string(const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "DFA states=" << num_states_ << " start=" << start_ << " dead="
      << (dead_ == kNoDead ? std::string("-") : std::to_string(dead_)) << "\n";
  for (uint32_t s = 0; s < num_states_; ++s) {
    out << "  q" << s << (accepting_[s] ? " [accept]" : "") << ":";
    for (uint32_t a = 0; a < num_symbols_; ++a) {
      out << " " << alphabet.name(a) << "->q" << next(s, a);
    }
    out << "\n";
  }
  return out.str();
}

namespace {

void eps_close(const Nfa& nfa, std::set<uint32_t>& states) {
  std::vector<uint32_t> stack(states.begin(), states.end());
  while (!stack.empty()) {
    const uint32_t s = stack.back();
    stack.pop_back();
    for (uint32_t t : nfa.epsilon[s]) {
      if (states.insert(t).second) stack.push_back(t);
    }
  }
}

}  // namespace

Dfa determinize(const Nfa& nfa, uint32_t num_symbols) {
  std::map<std::set<uint32_t>, uint32_t> ids;
  std::vector<std::set<uint32_t>> subsets;
  std::vector<std::vector<uint32_t>> table;  // per DFA state, per symbol

  auto intern = [&](std::set<uint32_t> subset) -> uint32_t {
    auto [it, inserted] = ids.emplace(subset, static_cast<uint32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      table.emplace_back(num_symbols, UINT32_MAX);
    }
    return it->second;
  };

  std::set<uint32_t> start_set{nfa.start};
  eps_close(nfa, start_set);
  const uint32_t start_id = intern(std::move(start_set));

  for (uint32_t current = 0; current < subsets.size(); ++current) {
    for (uint32_t symbol = 0; symbol < num_symbols; ++symbol) {
      std::set<uint32_t> next;
      for (uint32_t s : subsets[current]) {
        for (const NfaTransition& t : nfa.transitions[s]) {
          if (t.symbol == symbol || t.symbol == kAnySymbol) next.insert(t.target);
        }
      }
      eps_close(nfa, next);
      table[current][symbol] = intern(std::move(next));
    }
  }

  // The empty subset, if it appeared, is the dead state and is already
  // total (all its transitions stay empty -> itself).
  uint32_t dead = Dfa::kNoDead;
  for (uint32_t i = 0; i < subsets.size(); ++i) {
    if (subsets[i].empty()) dead = i;
  }

  Dfa dfa(static_cast<uint32_t>(subsets.size()), num_symbols);
  dfa.set_start(start_id);
  dfa.set_dead_state(dead);
  for (uint32_t s = 0; s < subsets.size(); ++s) {
    dfa.set_accepting(s, subsets[s].count(nfa.accept) > 0);
    for (uint32_t a = 0; a < num_symbols; ++a) dfa.set_next(s, a, table[s][a]);
  }
  return dfa;
}

Dfa compile_regex(const lang::RegexPtr& regex, const Alphabet& alphabet) {
  const Nfa nfa = thompson_construct(regex, alphabet);
  Dfa dfa = determinize(nfa, alphabet.size());
  return minimize(dfa);
}

}  // namespace contra::automata
