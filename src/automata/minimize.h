// DFA minimization (Moore partition refinement).
#pragma once

#include "automata/dfa.h"

namespace contra::automata {

/// Returns the minimal DFA equivalent to the input. The result is total;
/// if a dead state survives (i.e., some word can never reach acceptance),
/// dead_state() identifies it.
Dfa minimize(const Dfa& dfa);

}  // namespace contra::automata
