#include "automata/nfa.h"

#include <algorithm>
#include <set>

namespace contra::automata {

namespace {

/// Symbol id used for regex node names missing from the alphabet: an edge
/// labeled with it can never fire because real symbols are < alphabet size.
constexpr uint32_t kNeverSymbol = UINT32_MAX - 1;

class Builder {
 public:
  explicit Builder(const Alphabet& alphabet) : alphabet_(alphabet) {}

  Nfa build(const lang::RegexPtr& regex) {
    auto [s, a] = construct(regex);
    nfa_.start = s;
    nfa_.accept = a;
    return std::move(nfa_);
  }

 private:
  uint32_t new_state() {
    nfa_.transitions.emplace_back();
    nfa_.epsilon.emplace_back();
    return static_cast<uint32_t>(nfa_.transitions.size() - 1);
  }
  void add_edge(uint32_t from, uint32_t symbol, uint32_t to) {
    nfa_.transitions[from].push_back({symbol, to});
  }
  void add_eps(uint32_t from, uint32_t to) { nfa_.epsilon[from].push_back(to); }

  std::pair<uint32_t, uint32_t> construct(const lang::RegexPtr& r) {
    using Kind = lang::Regex::Kind;
    switch (r->kind) {
      case Kind::kEmpty: {
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        return {s, a};  // no edges: accepts nothing
      }
      case Kind::kEpsilon: {
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        add_eps(s, a);
        return {s, a};
      }
      case Kind::kNode: {
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        uint32_t sym = alphabet_.find(r->node);
        if (sym == Alphabet::kUnknown) sym = kNeverSymbol;
        add_edge(s, sym, a);
        return {s, a};
      }
      case Kind::kDot: {
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        add_edge(s, kAnySymbol, a);
        return {s, a};
      }
      case Kind::kUnion: {
        auto [ls, la] = construct(r->left);
        auto [rs, ra] = construct(r->right);
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        add_eps(s, ls);
        add_eps(s, rs);
        add_eps(la, a);
        add_eps(ra, a);
        return {s, a};
      }
      case Kind::kConcat: {
        auto [ls, la] = construct(r->left);
        auto [rs, ra] = construct(r->right);
        add_eps(la, rs);
        return {ls, ra};
      }
      case Kind::kStar: {
        auto [is, ia] = construct(r->left);
        const uint32_t s = new_state();
        const uint32_t a = new_state();
        add_eps(s, is);
        add_eps(s, a);
        add_eps(ia, is);
        add_eps(ia, a);
        return {s, a};
      }
    }
    const uint32_t s = new_state();
    return {s, s};
  }

  const Alphabet& alphabet_;
  Nfa nfa_;
};

void eps_closure(const Nfa& nfa, std::set<uint32_t>& states) {
  std::vector<uint32_t> stack(states.begin(), states.end());
  while (!stack.empty()) {
    const uint32_t s = stack.back();
    stack.pop_back();
    for (uint32_t t : nfa.epsilon[s]) {
      if (states.insert(t).second) stack.push_back(t);
    }
  }
}

}  // namespace

bool Nfa::accepts(const std::vector<uint32_t>& word) const {
  std::set<uint32_t> current{start};
  eps_closure(*this, current);
  for (uint32_t symbol : word) {
    std::set<uint32_t> next;
    for (uint32_t s : current) {
      for (const NfaTransition& t : transitions[s]) {
        if (t.symbol == symbol || t.symbol == kAnySymbol) next.insert(t.target);
      }
    }
    eps_closure(*this, next);
    current = std::move(next);
    if (current.empty()) return false;
  }
  return current.count(accept) > 0;
}

Nfa thompson_construct(const lang::RegexPtr& regex, const Alphabet& alphabet) {
  Builder builder(alphabet);
  return builder.build(regex);
}

}  // namespace contra::automata
