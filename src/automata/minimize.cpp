#include "automata/minimize.h"

#include <map>
#include <numeric>
#include <vector>

namespace contra::automata {

Dfa minimize(const Dfa& dfa) {
  const uint32_t n = dfa.num_states();
  const uint32_t k = dfa.num_symbols();
  if (n == 0) return dfa;

  // Moore's algorithm: start from the accepting / non-accepting partition
  // and refine until transition signatures agree within every block.
  std::vector<uint32_t> block(n);
  for (uint32_t s = 0; s < n; ++s) block[s] = dfa.accepting(s) ? 1 : 0;
  uint32_t num_blocks = 2;

  while (true) {
    // Signature of a state: (its block, blocks of all successors).
    std::map<std::vector<uint32_t>, uint32_t> sig_ids;
    std::vector<uint32_t> new_block(n);
    for (uint32_t s = 0; s < n; ++s) {
      std::vector<uint32_t> sig;
      sig.reserve(k + 1);
      sig.push_back(block[s]);
      for (uint32_t a = 0; a < k; ++a) sig.push_back(block[dfa.next(s, a)]);
      auto [it, inserted] = sig_ids.emplace(std::move(sig),
                                            static_cast<uint32_t>(sig_ids.size()));
      (void)inserted;
      new_block[s] = it->second;
    }
    const uint32_t refined = static_cast<uint32_t>(sig_ids.size());
    block = std::move(new_block);
    if (refined == num_blocks) break;
    num_blocks = refined;
  }

  Dfa out(num_blocks, k);
  out.set_start(block[dfa.start()]);
  for (uint32_t s = 0; s < n; ++s) {
    out.set_accepting(block[s], dfa.accepting(s));
    for (uint32_t a = 0; a < k; ++a) out.set_next(block[s], a, block[dfa.next(s, a)]);
  }

  // Re-identify the dead state: non-accepting and all transitions self-loop.
  out.set_dead_state(Dfa::kNoDead);
  for (uint32_t s = 0; s < num_blocks; ++s) {
    if (out.accepting(s)) continue;
    bool absorbing = true;
    for (uint32_t a = 0; a < k && absorbing; ++a) absorbing = out.next(s, a) == s;
    if (absorbing) {
      out.set_dead_state(s);
      break;
    }
  }
  return out;
}

}  // namespace contra::automata
