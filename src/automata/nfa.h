// Thompson construction: regex AST -> NFA with epsilon moves.
#pragma once

#include <cstdint>
#include <vector>

#include "automata/regex.h"
#include "lang/ast.h"

namespace contra::automata {

/// Wildcard symbol ('.') on an NFA edge.
inline constexpr uint32_t kAnySymbol = UINT32_MAX;

struct NfaTransition {
  uint32_t symbol = 0;  ///< symbol id, or kAnySymbol
  uint32_t target = 0;
};

/// Thompson-style NFA: one start, one accept state.
struct Nfa {
  uint32_t start = 0;
  uint32_t accept = 0;
  std::vector<std::vector<NfaTransition>> transitions;  ///< per state
  std::vector<std::vector<uint32_t>> epsilon;           ///< per state

  uint32_t num_states() const { return static_cast<uint32_t>(transitions.size()); }

  /// Simulates the NFA on a word (used to cross-check the DFA pipeline).
  bool accepts(const std::vector<uint32_t>& word) const;
};

/// Builds an NFA for the regex over the given alphabet. Node ids that do not
/// appear in the alphabet yield edges that can never fire (the regex names a
/// switch absent from this topology).
Nfa thompson_construct(const lang::RegexPtr& regex, const Alphabet& alphabet);

}  // namespace contra::automata
