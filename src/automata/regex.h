// Alphabet handling and the regex → automaton entry points.
//
// The alphabet of a policy automaton is the set of switch ids in the
// topology (paper §4.1). Because probes travel opposite to traffic, the
// compiler builds automata for the *reverse* of each policy regex; helpers
// here expose both directions.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"

namespace contra::automata {

/// Maps switch names to dense symbol ids.
class Alphabet {
 public:
  Alphabet() = default;
  explicit Alphabet(std::vector<std::string> symbols);

  uint32_t size() const { return static_cast<uint32_t>(symbols_.size()); }
  const std::string& name(uint32_t symbol) const { return symbols_.at(symbol); }
  /// Returns the symbol id, or kUnknown if the name is not in the alphabet.
  uint32_t find(const std::string& name) const;
  const std::vector<std::string>& names() const { return symbols_; }

  static constexpr uint32_t kUnknown = UINT32_MAX;

 private:
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// Encodes a node-name word as symbol ids (throws std::out_of_range if a
/// name is missing from the alphabet).
std::vector<uint32_t> encode_word(const Alphabet& alphabet,
                                  const std::vector<std::string>& names);

}  // namespace contra::automata
