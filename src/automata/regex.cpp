#include "automata/regex.h"

#include <stdexcept>

namespace contra::automata {

Alphabet::Alphabet(std::vector<std::string> symbols) : symbols_(std::move(symbols)) {
  for (uint32_t i = 0; i < symbols_.size(); ++i) index_[symbols_[i]] = i;
}

uint32_t Alphabet::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kUnknown : it->second;
}

std::vector<uint32_t> encode_word(const Alphabet& alphabet,
                                  const std::vector<std::string>& names) {
  std::vector<uint32_t> word;
  word.reserve(names.size());
  for (const auto& n : names) {
    const uint32_t s = alphabet.find(n);
    if (s == Alphabet::kUnknown) throw std::out_of_range("symbol not in alphabet: " + n);
    word.push_back(s);
  }
  return word;
}

}  // namespace contra::automata
