// Deterministic automata over switch-id alphabets.
//
// DFAs here are *total*: every state has a transition for every symbol, with
// a distinguished non-accepting dead state (the paper's "garbage" state "-")
// that absorbs all input. Totality keeps the product-graph construction
// uniform — a PG node may have one automaton in the garbage state while
// another is still making progress.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automata/nfa.h"

namespace contra::automata {

class Dfa {
 public:
  Dfa() = default;
  Dfa(uint32_t num_states, uint32_t num_symbols);

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }
  uint32_t start() const { return start_; }
  void set_start(uint32_t s) { start_ = s; }

  uint32_t next(uint32_t state, uint32_t symbol) const {
    return transitions_[static_cast<size_t>(state) * num_symbols_ + symbol];
  }
  void set_next(uint32_t state, uint32_t symbol, uint32_t target) {
    transitions_[static_cast<size_t>(state) * num_symbols_ + symbol] = target;
  }

  bool accepting(uint32_t state) const { return accepting_[state]; }
  void set_accepting(uint32_t state, bool value) { accepting_[state] = value; }

  /// The absorbing dead state, or kNoDead if every state can reach accept.
  uint32_t dead_state() const { return dead_; }
  void set_dead_state(uint32_t s) { dead_ = s; }
  static constexpr uint32_t kNoDead = UINT32_MAX;

  bool accepts(const std::vector<uint32_t>& word) const;

  /// Human-readable dump for debugging and golden tests.
  std::string to_string(const Alphabet& alphabet) const;

 private:
  uint32_t num_states_ = 0;
  uint32_t num_symbols_ = 0;
  uint32_t start_ = 0;
  uint32_t dead_ = kNoDead;
  std::vector<uint32_t> transitions_;
  std::vector<bool> accepting_;
};

/// Subset construction; the result is total (a dead state is added whenever
/// some input has nowhere to go).
Dfa determinize(const Nfa& nfa, uint32_t num_symbols);

/// Convenience: regex -> minimal total DFA in one step.
Dfa compile_regex(const lang::RegexPtr& regex, const Alphabet& alphabet);

}  // namespace contra::automata
