// Decomposition of policies into isotonic subpolicies (paper §3 challenge 3,
// §4 "Solution", Appendix A).
//
// A policy's boolean tests come in two flavors: *regex* tests (resolved by
// the product-graph tag once the full path is known) and *dynamic* tests
// (resolved by the metrics the probe collected). Either kind makes the naive
// best-probe-wins propagation lose optimal paths: the winning branch of a
// conditional is not known mid-path, so a single "best" probe per (dst, tag)
// can discard the path that a different branch would have preferred.
//
// The fix: enumerate assignments of the atomic tests. Every assignment
// resolves the policy to a test-free metric expression; structurally distinct
// expressions become separate *subpolicies*, each carried by its own probe id
// (pid) and minimized independently (each is isotonic on its own). Sources
// recombine by evaluating the *original* policy on every (tag, pid) candidate
// — each candidate is a real path whose true rank is computable from its tag
// (regex acceptance) and metrics — and pick the minimum (the paper's s()).
//
// Compiler optimizations implemented here, mirroring §6.1:
//  * branches that resolve to ∞ need no probe (forbidden paths);
//  * constant-only branches piggyback on any other pid (Fig. 6e: "a static
//    analysis has determined that only one probe is needed");
//  * constant offsets and constant tuple components are dropped from the
//    propagation objective (they shift all candidates equally);
//  * `path.len` is appended as a final tie-break component, which both makes
//    probe propagation strictly improving (termination) and prefers shorter
//    paths among policy-equal ones.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace contra::analysis {

/// One isotonic subpolicy: a test-free objective used as the probe
/// comparison function f(pid, mv).
struct Subpolicy {
  lang::ExprPtr objective;      ///< propagation objective: normalized + len tie-break
  lang::ExprPtr user_objective; ///< the branch as the user wrote it (normalized only);
                                ///< analyses judge this, not the tie-break
  std::string description;      ///< human-readable, for diagnostics
};

struct Decomposition {
  lang::Policy original;             ///< evaluated at sources (the s() rank)
  std::vector<Subpolicy> subpolicies;///< index == pid
  std::vector<lang::PathAttr> attrs; ///< metrics vector layout carried by probes
  size_t atomic_test_count = 0;      ///< enumerated assignment dimensions
};

/// Thrown when a policy has too many atomic tests to enumerate (>16) or is
/// otherwise malformed for decomposition.
class DecomposeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Decomposition decompose(const lang::Policy& policy);

// --- building blocks shared with the other analyses -----------------------

/// Atomic tests (regex or comparison leaves) in first-appearance order.
std::vector<lang::TestPtr> collect_atomic_tests(const lang::Policy& policy);

/// Partially evaluates an expression under an assignment of atomic tests
/// (index into the collect_atomic_tests order -> bool). The result contains
/// no If/tests.
lang::ExprPtr resolve_tests(const lang::ExprPtr& expr,
                            const std::vector<lang::TestPtr>& atoms,
                            const std::vector<bool>& assignment);

/// Constant folding + tuple flattening + dropping of order-irrelevant
/// constants (constant tuple components, constant addends).
lang::ExprPtr normalize_metric(const lang::ExprPtr& expr);

/// Structural equality after normalization.
bool expr_equal(const lang::ExprPtr& a, const lang::ExprPtr& b);

/// True if the normalized expression is a constant (incl. ∞) — it induces no
/// ordering among paths.
bool is_constant_metric(const lang::ExprPtr& expr);

/// True if the expression is exactly ∞.
bool is_infinite_metric(const lang::ExprPtr& expr);

}  // namespace contra::analysis
