#include "analysis/isotonicity.h"

#include <sstream>

#include "analysis/attributes.h"
#include "util/rng.h"

namespace contra::analysis {

using lang::Expr;
using lang::ExprPtr;
using lang::PathAttr;

namespace {

/// Is this a single attribute or constant (the atomic isotonic shapes)?
bool is_atomic(const ExprPtr& e) {
  return e->kind == Expr::Kind::kAttr || e->kind == Expr::Kind::kConst ||
         e->kind == Expr::Kind::kInfinity;
}

bool is_bottleneck(const ExprPtr& e) {
  return e->kind == Expr::Kind::kAttr && attr_combinator(e->attr) == Combinator::kMax;
}

/// Additive trees of additive attributes/constants are isotonic (strictly
/// order-preserving under extension).
bool is_additive_tree(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kConst:
      return true;
    case Expr::Kind::kAttr:
      return attr_combinator(e->attr) == Combinator::kAdd;
    case Expr::Kind::kBinOp:
      return e->op == lang::BinOp::kAdd && is_additive_tree(e->lhs) && is_additive_tree(e->rhs);
    default:
      return false;
  }
}

lang::PathAttributes random_attrs(util::Rng& rng) {
  lang::PathAttributes a;
  a.util = rng.uniform();
  a.lat = rng.uniform() * 10.0;
  a.len = static_cast<double>(rng.uniform_int(0, 12));
  return a;
}

}  // namespace

bool metric_is_isotonic_structural(const ExprPtr& expr) {
  // Atomic metrics are isotonic: additive attributes preserve strict order;
  // bottleneck attributes preserve weak order (max with a common value).
  if (is_atomic(expr) || is_additive_tree(expr)) return true;
  if (expr->kind == Expr::Kind::kTuple) {
    // Lexicographic list: every component before the last must preserve
    // strict order (additive); a bottleneck component is only safe in the
    // final position (a collapse to a tie there has nothing left to flip).
    for (size_t i = 0; i < expr->elems.size(); ++i) {
      const ExprPtr& el = expr->elems[i];
      const bool last = i + 1 == expr->elems.size();
      if (last) {
        if (!is_atomic(el) && !is_additive_tree(el)) return false;
      } else {
        if (!is_additive_tree(el) && el->kind != Expr::Kind::kConst) return false;
        if (is_bottleneck(el)) return false;
      }
    }
    return true;
  }
  return false;
}

std::optional<IsotonicityCounterexample> sample_isotonicity_violation(const ExprPtr& expr,
                                                                      uint64_t seed,
                                                                      int samples) {
  util::Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const lang::PathAttributes p1 = random_attrs(rng);
    const lang::PathAttributes p2 = random_attrs(rng);
    const lang::LinkMetrics link{.util = rng.uniform(), .lat = rng.uniform() * 2.0};
    const lang::Rank r1 = evaluate_metric(expr, p1);
    const lang::Rank r2 = evaluate_metric(expr, p2);
    if (!(r1 <= r2)) continue;
    const lang::Rank e1 = evaluate_metric(expr, extend(p1, link));
    const lang::Rank e2 = evaluate_metric(expr, extend(p2, link));
    if (!(e1 <= e2)) {
      return IsotonicityCounterexample{.path1 = p1, .path2 = p2, .extension = link};
    }
  }
  return std::nullopt;
}

IsotonicityReport check_isotonicity(const Decomposition& decomposition, uint64_t seed,
                                    int samples) {
  IsotonicityReport report;
  report.num_subpolicies = decomposition.subpolicies.size();
  if (decomposition.subpolicies.size() > 1) {
    report.classification = IsotonicityClass::kDecomposed;
    return report;
  }
  const ExprPtr& objective = decomposition.subpolicies[0].user_objective;
  if (metric_is_isotonic_structural(objective)) {
    report.classification = IsotonicityClass::kIsotonic;
    return report;
  }
  auto violation = sample_isotonicity_violation(objective, seed, samples);
  if (violation) {
    report.classification = IsotonicityClass::kWeaklyNonIsotonic;
    report.counterexample = std::move(violation);
  } else {
    report.classification = IsotonicityClass::kIsotonic;
  }
  return report;
}

IsotonicityReport check_isotonicity(const lang::Policy& policy, uint64_t seed, int samples) {
  return check_isotonicity(decompose(policy), seed, samples);
}

const char* isotonicity_class_name(IsotonicityClass c) {
  switch (c) {
    case IsotonicityClass::kIsotonic: return "isotonic";
    case IsotonicityClass::kDecomposed: return "non-isotonic (decomposed)";
    case IsotonicityClass::kWeaklyNonIsotonic: return "weakly non-isotonic";
  }
  return "?";
}

std::string IsotonicityReport::to_string() const {
  std::ostringstream out;
  out << isotonicity_class_name(classification) << ", " << num_subpolicies << " subpolicies";
  if (counterexample) {
    out << " (counterexample: p1{util=" << counterexample->path1.util
        << ",len=" << counterexample->path1.len << "} vs p2{util=" << counterexample->path2.util
        << ",len=" << counterexample->path2.len
        << "} flips after link util=" << counterexample->extension.util << ")";
  }
  return out.str();
}

}  // namespace contra::analysis
