// The metric algebra: how each path attribute extends when a path grows by
// one link. `util` is a bottleneck metric (combines by max); `lat` and `len`
// are additive. Monotonicity and isotonicity are properties of policy
// expressions *with respect to this algebra*.
#pragma once

#include "lang/ast.h"
#include "lang/eval.h"

namespace contra::analysis {

enum class Combinator { kAdd, kMax };

Combinator attr_combinator(lang::PathAttr attr);

/// Extends aggregated path attributes with one more link (in either probe or
/// traffic direction — the algebra is symmetric).
lang::PathAttributes extend(const lang::PathAttributes& attrs, const lang::LinkMetrics& link);

/// Evaluates a test-free expression on attributes alone (no path shape).
lang::Rank evaluate_metric(const lang::ExprPtr& expr, const lang::PathAttributes& attrs);

}  // namespace contra::analysis
