#include "analysis/decompose.h"

#include <algorithm>

#include "lang/printer.h"
#include "lang/rank.h"

namespace contra::analysis {

using lang::BinOp;
using lang::BoolTest;
using lang::Expr;
using lang::ExprPtr;
using lang::PathAttr;
using lang::Policy;
using lang::TestPtr;

namespace {

bool test_equal(const TestPtr& a, const TestPtr& b);

bool expr_equal_impl(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Expr::Kind::kConst:
      return a->value == b->value;
    case Expr::Kind::kInfinity:
      return true;
    case Expr::Kind::kAttr:
      return a->attr == b->attr;
    case Expr::Kind::kBinOp:
      return a->op == b->op && expr_equal_impl(a->lhs, b->lhs) && expr_equal_impl(a->rhs, b->rhs);
    case Expr::Kind::kIf:
      return test_equal(a->cond, b->cond) && expr_equal_impl(a->then_branch, b->then_branch) &&
             expr_equal_impl(a->else_branch, b->else_branch);
    case Expr::Kind::kTuple: {
      if (a->elems.size() != b->elems.size()) return false;
      for (size_t i = 0; i < a->elems.size(); ++i) {
        if (!expr_equal_impl(a->elems[i], b->elems[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool test_equal(const TestPtr& a, const TestPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case BoolTest::Kind::kRegex:
      return lang::Regex::equal(*a->regex, *b->regex);
    case BoolTest::Kind::kCompare:
      return a->cmp == b->cmp && expr_equal_impl(a->cmp_lhs, b->cmp_lhs) &&
             expr_equal_impl(a->cmp_rhs, b->cmp_rhs);
    case BoolTest::Kind::kNot:
      return test_equal(a->left, b->left);
    case BoolTest::Kind::kOr:
    case BoolTest::Kind::kAnd:
      return test_equal(a->left, b->left) && test_equal(a->right, b->right);
  }
  return false;
}

void collect_atoms_test(const TestPtr& t, std::vector<TestPtr>& atoms);

void collect_atoms_expr(const ExprPtr& e, std::vector<TestPtr>& atoms) {
  if (!e) return;
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      return;
    case Expr::Kind::kBinOp:
      collect_atoms_expr(e->lhs, atoms);
      collect_atoms_expr(e->rhs, atoms);
      return;
    case Expr::Kind::kIf:
      collect_atoms_test(e->cond, atoms);
      collect_atoms_expr(e->then_branch, atoms);
      collect_atoms_expr(e->else_branch, atoms);
      return;
    case Expr::Kind::kTuple:
      for (const auto& el : e->elems) collect_atoms_expr(el, atoms);
      return;
  }
}

void collect_atoms_test(const TestPtr& t, std::vector<TestPtr>& atoms) {
  if (!t) return;
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
    case BoolTest::Kind::kCompare: {
      for (const auto& existing : atoms) {
        if (test_equal(existing, t)) return;
      }
      atoms.push_back(t);
      return;
    }
    case BoolTest::Kind::kNot:
      collect_atoms_test(t->left, atoms);
      return;
    case BoolTest::Kind::kOr:
    case BoolTest::Kind::kAnd:
      collect_atoms_test(t->left, atoms);
      collect_atoms_test(t->right, atoms);
      return;
  }
}

bool resolve_test(const TestPtr& t, const std::vector<TestPtr>& atoms,
                  const std::vector<bool>& assignment) {
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
    case BoolTest::Kind::kCompare: {
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (test_equal(atoms[i], t)) return assignment[i];
      }
      throw DecomposeError("atomic test not found in assignment");
    }
    case BoolTest::Kind::kNot:
      return !resolve_test(t->left, atoms, assignment);
    case BoolTest::Kind::kOr:
      return resolve_test(t->left, atoms, assignment) ||
             resolve_test(t->right, atoms, assignment);
    case BoolTest::Kind::kAnd:
      return resolve_test(t->left, atoms, assignment) &&
             resolve_test(t->right, atoms, assignment);
  }
  return false;
}

bool is_const(const ExprPtr& e) { return e->kind == Expr::Kind::kConst; }
bool is_inf(const ExprPtr& e) { return e->kind == Expr::Kind::kInfinity; }

}  // namespace

std::vector<TestPtr> collect_atomic_tests(const Policy& policy) {
  std::vector<TestPtr> atoms;
  collect_atoms_expr(policy.objective, atoms);
  return atoms;
}

ExprPtr resolve_tests(const ExprPtr& e, const std::vector<TestPtr>& atoms,
                      const std::vector<bool>& assignment) {
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      return e;
    case Expr::Kind::kBinOp:
      return Expr::binop(e->op, resolve_tests(e->lhs, atoms, assignment),
                         resolve_tests(e->rhs, atoms, assignment));
    case Expr::Kind::kIf:
      return resolve_test(e->cond, atoms, assignment)
                 ? resolve_tests(e->then_branch, atoms, assignment)
                 : resolve_tests(e->else_branch, atoms, assignment);
    case Expr::Kind::kTuple: {
      std::vector<ExprPtr> elems;
      elems.reserve(e->elems.size());
      for (const auto& el : e->elems) elems.push_back(resolve_tests(el, atoms, assignment));
      return Expr::tuple(std::move(elems));
    }
  }
  return e;
}

ExprPtr normalize_metric(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      return e;
    case Expr::Kind::kBinOp: {
      ExprPtr l = normalize_metric(e->lhs);
      ExprPtr r = normalize_metric(e->rhs);
      // ∞ absorbs + and -.
      if ((e->op == BinOp::kAdd || e->op == BinOp::kSub) && (is_inf(l) || is_inf(r))) {
        return Expr::infinity();
      }
      if (is_const(l) && is_const(r)) {  // constant folding
        const lang::Rank a = lang::Rank::scalar(l->value);
        const lang::Rank b = lang::Rank::scalar(r->value);
        lang::Rank result;
        switch (e->op) {
          case BinOp::kAdd: result = lang::Rank::add(a, b); break;
          case BinOp::kSub: result = lang::Rank::sub(a, b); break;
          case BinOp::kMin: result = lang::Rank::min(a, b); break;
          case BinOp::kMax: result = lang::Rank::max(a, b); break;
        }
        return Expr::constant(result.scalar_value());
      }
      // A constant addend shifts every candidate path equally — drop it from
      // the propagation objective (it still appears in the original policy
      // used for the final s() ranking).
      if (e->op == BinOp::kAdd) {
        if (is_const(l)) return r;
        if (is_const(r)) return l;
      }
      if (e->op == BinOp::kSub && is_const(r)) return l;
      if (e->op == BinOp::kMin) {
        if (is_inf(l)) return r;
        if (is_inf(r)) return l;
      }
      if (e->op == BinOp::kMax) {
        if (is_inf(l) || is_inf(r)) return Expr::infinity();
      }
      return Expr::binop(e->op, std::move(l), std::move(r));
    }
    case Expr::Kind::kIf:
      throw DecomposeError("normalize_metric expects a test-free expression");
    case Expr::Kind::kTuple: {
      // Flatten nested tuples; an ∞ component forbids the whole path; drop
      // constant components (equal across all candidates of this pid).
      std::vector<ExprPtr> elems;
      for (const auto& raw : e->elems) {
        ExprPtr el = normalize_metric(raw);
        if (is_inf(el)) return Expr::infinity();
        if (is_const(el)) continue;
        if (el->kind == Expr::Kind::kTuple) {
          elems.insert(elems.end(), el->elems.begin(), el->elems.end());
        } else {
          elems.push_back(std::move(el));
        }
      }
      if (elems.empty()) return Expr::constant(0.0);
      if (elems.size() == 1) return elems[0];
      return Expr::tuple(std::move(elems));
    }
  }
  return e;
}

bool expr_equal(const ExprPtr& a, const ExprPtr& b) { return expr_equal_impl(a, b); }

bool is_constant_metric(const ExprPtr& e) {
  return e->kind == Expr::Kind::kConst || e->kind == Expr::Kind::kInfinity;
}

bool is_infinite_metric(const ExprPtr& e) { return e->kind == Expr::Kind::kInfinity; }

Decomposition decompose(const Policy& policy) {
  const std::vector<TestPtr> atoms = collect_atomic_tests(policy);
  if (atoms.size() > 16) {
    throw DecomposeError("policy has " + std::to_string(atoms.size()) +
                         " atomic tests; decomposition enumerates at most 2^16 assignments");
  }

  Decomposition out;
  out.original = policy;
  out.atomic_test_count = atoms.size();

  const size_t num_assignments = size_t{1} << atoms.size();
  for (size_t mask = 0; mask < num_assignments; ++mask) {
    std::vector<bool> assignment(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) assignment[i] = (mask >> i) & 1;

    ExprPtr user_branch = normalize_metric(resolve_tests(policy.objective, atoms, assignment));
    if (is_infinite_metric(user_branch)) continue;  // forbidden: no probe needed
    if (is_constant_metric(user_branch)) continue;  // piggybacks on any other pid

    // Append the path-length tie-break unless length already participates.
    ExprPtr branch = user_branch;
    if (!lang::expr_uses_attr(branch, PathAttr::kLen)) {
      branch = normalize_metric(Expr::tuple({branch, Expr::attribute(PathAttr::kLen)}));
    }

    bool duplicate = false;
    for (const Subpolicy& existing : out.subpolicies) {
      if (expr_equal(existing.objective, branch)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      out.subpolicies.push_back(
          Subpolicy{branch, std::move(user_branch), lang::to_string(branch)});
    }
  }

  // A fully static policy (every branch constant or ∞) still needs one probe
  // to discover reachability; shortest-path is the canonical tie-break.
  if (out.subpolicies.empty()) {
    ExprPtr len = Expr::attribute(PathAttr::kLen);
    out.subpolicies.push_back(Subpolicy{len, len, "path.len (reachability probe)"});
  }

  // Metrics vector layout: every attribute the original policy mentions plus
  // len (the tie-break), in canonical order util < lat < len.
  std::vector<PathAttr> attrs = lang::collect_attrs(policy);
  if (std::find(attrs.begin(), attrs.end(), PathAttr::kLen) == attrs.end()) {
    attrs.push_back(PathAttr::kLen);
  }
  std::sort(attrs.begin(), attrs.end(),
            [](PathAttr a, PathAttr b) { return static_cast<int>(a) < static_cast<int>(b); });
  out.attrs = std::move(attrs);
  return out;
}

}  // namespace contra::analysis
