#include "analysis/attributes.h"

#include <algorithm>

namespace contra::analysis {

Combinator attr_combinator(lang::PathAttr attr) {
  switch (attr) {
    case lang::PathAttr::kUtil: return Combinator::kMax;
    case lang::PathAttr::kLat: return Combinator::kAdd;
    case lang::PathAttr::kLen: return Combinator::kAdd;
  }
  return Combinator::kAdd;
}

lang::PathAttributes extend(const lang::PathAttributes& attrs, const lang::LinkMetrics& link) {
  lang::PathAttributes out = attrs;
  out.util = std::max(out.util, link.util);
  out.lat += link.lat;
  out.len += 1.0;
  return out;
}

lang::Rank evaluate_metric(const lang::ExprPtr& expr, const lang::PathAttributes& attrs) {
  static const std::vector<std::string> kNoNodes;
  return lang::evaluate_expr(expr, kNoNodes, attrs);
}

}  // namespace contra::analysis
