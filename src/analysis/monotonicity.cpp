#include "analysis/monotonicity.h"

#include <sstream>

#include "analysis/attributes.h"
#include "util/rng.h"

namespace contra::analysis {

using lang::Expr;
using lang::ExprPtr;

namespace {

/// Direction lattice for the structural pass.
enum class Trend { kConstant, kNonDecreasing, kNonIncreasing, kUnknown };

Trend combine_add(Trend a, Trend b) {
  if (a == Trend::kConstant) return b;
  if (b == Trend::kConstant) return a;
  if (a == b) return a;
  return Trend::kUnknown;
}

Trend negate(Trend t) {
  switch (t) {
    case Trend::kConstant: return Trend::kConstant;
    case Trend::kNonDecreasing: return Trend::kNonIncreasing;
    case Trend::kNonIncreasing: return Trend::kNonDecreasing;
    case Trend::kUnknown: return Trend::kUnknown;
  }
  return Trend::kUnknown;
}

Trend trend_of(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
      return Trend::kConstant;
    case Expr::Kind::kAttr:
      // Every attribute is non-decreasing under extension: util by max,
      // lat/len by adding non-negative amounts.
      return Trend::kNonDecreasing;
    case Expr::Kind::kBinOp: {
      const Trend l = trend_of(e->lhs);
      const Trend r = trend_of(e->rhs);
      switch (e->op) {
        case lang::BinOp::kAdd:
          return combine_add(l, r);
        case lang::BinOp::kSub:
          return combine_add(l, negate(r));
        case lang::BinOp::kMin:
        case lang::BinOp::kMax:
          return combine_add(l, r) == Trend::kUnknown ? Trend::kUnknown : combine_add(l, r);
      }
      return Trend::kUnknown;
    }
    case Expr::Kind::kIf:
      return Trend::kUnknown;  // handled by decomposition first
    case Expr::Kind::kTuple: {
      Trend acc = Trend::kConstant;
      for (const auto& el : e->elems) {
        const Trend t = trend_of(el);
        if (t == Trend::kUnknown || t == Trend::kNonIncreasing) return Trend::kUnknown;
        if (t == Trend::kNonDecreasing) acc = Trend::kNonDecreasing;
      }
      return acc;
    }
  }
  return Trend::kUnknown;
}

/// Strictness lattice: how the expression moves under a single-link
/// extension. kWeak = non-decreasing but can tie; kStrict = always grows.
enum class Strict { kConstant, kWeak, kStrict, kUnknown };

Strict strict_of(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
      return Strict::kConstant;
    case Expr::Kind::kAttr:
      // len grows by exactly 1 per hop. util (max-combine) and lat
      // (zero-delay links exist) can tie across an extension.
      return e->attr == lang::PathAttr::kLen ? Strict::kStrict : Strict::kWeak;
    case Expr::Kind::kBinOp: {
      const Strict l = strict_of(e->lhs);
      const Strict r = strict_of(e->rhs);
      if (l == Strict::kUnknown || r == Strict::kUnknown) return Strict::kUnknown;
      switch (e->op) {
        case lang::BinOp::kAdd:
          // strict + non-decreasing grows strictly.
          if (l == Strict::kStrict || r == Strict::kStrict) return Strict::kStrict;
          if (l == Strict::kConstant && r == Strict::kConstant) return Strict::kConstant;
          return Strict::kWeak;
        case lang::BinOp::kSub:
          return Strict::kUnknown;  // the monotone pass may still reject it
        case lang::BinOp::kMin:
        case lang::BinOp::kMax:
          // min/max of two strictly growing terms strictly grows; one
          // tie-capable side can pin the result.
          if (l == Strict::kStrict && r == Strict::kStrict) return Strict::kStrict;
          if (l == Strict::kConstant && r == Strict::kConstant) return Strict::kConstant;
          return Strict::kWeak;
      }
      return Strict::kUnknown;
    }
    case Expr::Kind::kIf:
      return Strict::kUnknown;  // handled by decomposition first
    case Expr::Kind::kTuple: {
      // Lexicographic order: with every element non-decreasing, the first
      // element that moves decides — so one strict element anywhere makes
      // the whole tuple strictly increase.
      bool any_strict = false;
      bool all_const = true;
      for (const auto& el : e->elems) {
        const Strict s = strict_of(el);
        if (s == Strict::kUnknown) return Strict::kUnknown;
        if (s == Strict::kStrict) any_strict = true;
        if (s != Strict::kConstant) all_const = false;
      }
      if (any_strict) return Strict::kStrict;
      return all_const ? Strict::kConstant : Strict::kWeak;
    }
  }
  return Strict::kUnknown;
}

lang::PathAttributes random_attrs(util::Rng& rng) {
  lang::PathAttributes a;
  a.util = rng.uniform();
  a.lat = rng.uniform() * 10.0;
  a.len = static_cast<double>(rng.uniform_int(0, 12));
  return a;
}

lang::LinkMetrics random_link(util::Rng& rng) {
  return lang::LinkMetrics{.util = rng.uniform(), .lat = rng.uniform() * 2.0};
}

}  // namespace

bool metric_is_monotonic_structural(const ExprPtr& expr) {
  const Trend t = trend_of(expr);
  return t == Trend::kConstant || t == Trend::kNonDecreasing;
}

bool metric_is_strictly_monotonic_structural(const ExprPtr& expr) {
  return strict_of(expr) == Strict::kStrict;
}

std::optional<MonotonicityCounterexample> sample_monotonicity_violation(const ExprPtr& expr,
                                                                        uint64_t seed,
                                                                        int samples) {
  util::Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const lang::PathAttributes base = random_attrs(rng);
    const lang::LinkMetrics link = random_link(rng);
    const lang::PathAttributes extended = extend(base, link);
    const lang::Rank before = evaluate_metric(expr, base);
    const lang::Rank after = evaluate_metric(expr, extended);
    if (after < before) {
      return MonotonicityCounterexample{
          .base = base,
          .extension = link,
          .base_rank = before.to_string(),
          .extended_rank = after.to_string(),
      };
    }
  }
  return std::nullopt;
}

std::optional<MonotonicityCounterexample> sample_strictness_violation(const ExprPtr& expr,
                                                                      uint64_t seed,
                                                                      int samples) {
  util::Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const lang::PathAttributes base = random_attrs(rng);
    const lang::LinkMetrics link = random_link(rng);
    const lang::PathAttributes extended = extend(base, link);
    const lang::Rank before = evaluate_metric(expr, base);
    const lang::Rank after = evaluate_metric(expr, extended);
    if (!(before < after)) {
      return MonotonicityCounterexample{
          .base = base,
          .extension = link,
          .base_rank = before.to_string(),
          .extended_rank = after.to_string(),
      };
    }
  }
  return std::nullopt;
}

MonotonicityReport check_monotonicity(const Decomposition& decomposition, uint64_t seed,
                                      int samples) {
  MonotonicityReport report;
  report.strictly_monotonic = true;
  for (size_t pid = 0; pid < decomposition.subpolicies.size(); ++pid) {
    const ExprPtr& objective = decomposition.subpolicies[pid].objective;
    if (!metric_is_monotonic_structural(objective)) {
      auto violation = sample_monotonicity_violation(objective, seed, samples);
      if (violation) {
        report.monotonic = false;
        report.strictly_monotonic = false;
        report.violating_pid = pid;
        report.counterexample = std::move(violation);
        return report;
      }
      // Structurally unknown but no sampled violation: treat as monotonic
      // (randomized soundness); the structural pass covers all paper policies.
    }
    if (report.strictly_monotonic && !metric_is_strictly_monotonic_structural(objective)) {
      // Structural pass said "can tie": trust it for the known-weak shapes
      // (util, lat) and fall back to sampling only for unknown ones. The
      // sampler draws strictly positive link metrics, so it would wrongly
      // certify `path.lat`-style objectives the structural pass already
      // understands.
      const Strict s = strict_of(objective);
      report.strictly_monotonic =
          s == Strict::kUnknown && !sample_strictness_violation(objective, seed, samples);
    }
  }
  return report;
}

MonotonicityReport check_monotonicity(const lang::Policy& policy, uint64_t seed, int samples) {
  return check_monotonicity(decompose(policy), seed, samples);
}

std::string MonotonicityReport::to_string() const {
  if (monotonic) return strictly_monotonic ? "strictly monotonic" : "monotonic";
  std::ostringstream out;
  out << "non-monotonic (pid " << violating_pid << ")";
  if (counterexample) {
    out << ": rank " << counterexample->base_rank << " -> " << counterexample->extended_rank
        << " after extending {util=" << counterexample->base.util
        << ", lat=" << counterexample->base.lat << ", len=" << counterexample->base.len
        << "} with link {util=" << counterexample->extension.util
        << ", lat=" << counterexample->extension.lat << "}";
  }
  return out.str();
}

}  // namespace contra::analysis
