// Isotonicity analysis (paper §2, §3 challenge 3; Griffin & Sobrinho's
// metarouting property).
//
// A metric is isotonic when extension preserves preference: if path p1 is
// ranked no worse than p2 at some node, then e⊕p1 is ranked no worse than
// e⊕p2 after both are extended by the same link e. Isotonicity is what makes
// it safe for a switch to discard all but the best probe per (dst, tag, pid).
//
// Classification of a full policy:
//   kIsotonic      — single subpolicy, provably/empirically isotonic; one
//                    probe id suffices.
//   kDecomposed    — the policy itself is non-isotonic (conditional branches
//                    rank differently), but decomposition produced multiple
//                    isotonic subpolicies (e.g. P9 / "CA").
//   kWeaklyNonIsotonic — a single subpolicy with sampled isotonicity
//                    violations (e.g. a bottleneck component followed by a
//                    tie-break, as in P3 (path.util, path.len)): compiled
//                    with one probe; convergence is to a good, possibly
//                    non-optimal path. Reported so operators can re-order
//                    components.
#pragma once

#include <optional>
#include <string>

#include "analysis/decompose.h"
#include "lang/ast.h"
#include "lang/eval.h"

namespace contra::analysis {

enum class IsotonicityClass { kIsotonic, kDecomposed, kWeaklyNonIsotonic };

const char* isotonicity_class_name(IsotonicityClass c);

struct IsotonicityCounterexample {
  lang::PathAttributes path1;
  lang::PathAttributes path2;
  lang::LinkMetrics extension;
};

struct IsotonicityReport {
  IsotonicityClass classification = IsotonicityClass::kIsotonic;
  size_t num_subpolicies = 1;
  std::optional<IsotonicityCounterexample> counterexample;  ///< weakly-non-isotonic only

  std::string to_string() const;
};

/// Structural sufficient condition for one metric expression: a lexicographic
/// list whose bottleneck (max-combined) components appear only in the last
/// position is isotonic.
bool metric_is_isotonic_structural(const lang::ExprPtr& expr);

/// Randomized check: find p1 <= p2 whose order flips after a common extension.
std::optional<IsotonicityCounterexample> sample_isotonicity_violation(
    const lang::ExprPtr& expr, uint64_t seed, int samples);

IsotonicityReport check_isotonicity(const lang::Policy& policy, uint64_t seed = 11,
                                    int samples = 4000);
IsotonicityReport check_isotonicity(const Decomposition& decomposition, uint64_t seed = 11,
                                    int samples = 4000);

}  // namespace contra::analysis
