// Monotonicity analysis (paper §2 "Advanced policy analysis", §5.1).
//
// A policy is monotonic when a path's rank never improves as the path is
// extended — the property that makes probe propagation terminate (a probe
// circling a loop strictly worsens, so it stops beating the stored entry)
// and that versioned probes rely on for loop mitigation.
//
// The check runs per decomposed subpolicy (the propagation objectives) and
// combines a structural pass (sound for the common shapes) with a randomized
// semantic check over the metric algebra (catches everything else with high
// probability, e.g. subtraction of attributes).
#pragma once

#include <optional>
#include <string>

#include "analysis/decompose.h"
#include "lang/ast.h"
#include "lang/eval.h"

namespace contra::analysis {

struct MonotonicityCounterexample {
  lang::PathAttributes base;
  lang::LinkMetrics extension;
  std::string base_rank;
  std::string extended_rank;
};

struct MonotonicityReport {
  bool monotonic = true;
  /// Strict monotonicity: every extension strictly worsens the rank (a probe
  /// circling a loop cannot tie the stored entry). This is the stronger
  /// property the triggered-update fixed-point argument needs (DESIGN.md
  /// §12): with ties possible, triggered and periodic runs may legitimately
  /// settle on different equal-rank paths. Implied false when !monotonic.
  bool strictly_monotonic = false;
  /// Which subpolicy (pid) violated, if any.
  size_t violating_pid = 0;
  std::optional<MonotonicityCounterexample> counterexample;

  std::string to_string() const;
};

/// Checks a single test-free metric expression.
bool metric_is_monotonic_structural(const lang::ExprPtr& expr);

/// Strict variant: true when every single-link extension strictly increases
/// the rank. Structurally, `len` grows by exactly 1 per hop while `util`
/// (max-combine) and `lat` (zero-delay links) may tie, so a tuple is strict
/// iff all elements are non-decreasing and at least one is strict —
/// lexicographic order then strictly increases.
bool metric_is_strictly_monotonic_structural(const lang::ExprPtr& expr);

/// Randomized semantic check of one metric expression. Returns a
/// counterexample if rank(extend(attrs, link)) < rank(attrs) for any sample.
std::optional<MonotonicityCounterexample> sample_monotonicity_violation(
    const lang::ExprPtr& expr, uint64_t seed, int samples);

/// Randomized strictness check: a counterexample where the extended rank
/// fails to strictly worsen (after <= before).
std::optional<MonotonicityCounterexample> sample_strictness_violation(
    const lang::ExprPtr& expr, uint64_t seed, int samples);

/// Full policy check via decomposition.
MonotonicityReport check_monotonicity(const lang::Policy& policy, uint64_t seed = 7,
                                      int samples = 4000);
MonotonicityReport check_monotonicity(const Decomposition& decomposition, uint64_t seed = 7,
                                      int samples = 4000);

}  // namespace contra::analysis
