// Lexer for the Contra policy language.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace contra::lang {

/// Raised on malformed policy text; carries the byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, size_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

/// Tokenizes a full policy string. A trailing kEnd token is always appended.
std::vector<Token> tokenize(std::string_view source);

}  // namespace contra::lang
