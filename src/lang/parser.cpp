#include "lang/parser.h"

#include <optional>

namespace contra::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Policy parse_policy() {
    expect(TokenKind::kMinimize);
    expect(TokenKind::kLParen);
    ExprPtr e = parse_expression();
    expect(TokenKind::kRParen);
    expect(TokenKind::kEnd);
    return Policy{.objective = std::move(e)};
  }

  ExprPtr parse_bare_expr() {
    ExprPtr e = parse_expression();
    expect(TokenKind::kEnd);
    return e;
  }

  RegexPtr parse_bare_regex() {
    RegexPtr r = parse_regex_union();
    expect(TokenKind::kEnd);
    return r;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  TokenKind kind(size_t ahead = 0) const { return peek(ahead).kind; }
  const Token& advance() { return tokens_[pos_++]; }
  bool accept(TokenKind k) {
    if (kind() == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(TokenKind k) {
    if (kind() != k) {
      throw ParseError(std::string("expected ") + token_kind_name(k) + " but found " +
                           token_kind_name(kind()),
                       peek().offset);
    }
    return advance();
  }
  [[noreturn]] void fail(const std::string& message) { throw ParseError(message, peek().offset); }

  // ----- expressions ------------------------------------------------------

  ExprPtr parse_expression() {
    if (kind() == TokenKind::kIf) return parse_if();
    return parse_additive();
  }

  ExprPtr parse_if() {
    expect(TokenKind::kIf);
    TestPtr cond = parse_test();
    expect(TokenKind::kThen);
    ExprPtr then_branch = parse_expression();
    expect(TokenKind::kElse);
    ExprPtr else_branch = parse_expression();
    return Expr::if_then_else(std::move(cond), std::move(then_branch), std::move(else_branch));
  }

  ExprPtr parse_additive() {
    ExprPtr left = parse_primary();
    while (kind() == TokenKind::kPlus || kind() == TokenKind::kMinus) {
      const BinOp op = kind() == TokenKind::kPlus ? BinOp::kAdd : BinOp::kSub;
      advance();
      ExprPtr right = parse_primary();
      left = Expr::binop(op, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr parse_primary() {
    switch (kind()) {
      case TokenKind::kNumber: {
        const double v = advance().number;
        return Expr::constant(v);
      }
      case TokenKind::kInf:
        advance();
        return Expr::infinity();
      case TokenKind::kPath: {
        advance();
        expect(TokenKind::kDot);
        const Token& attr = expect(TokenKind::kIdent);
        if (attr.text == "util") return Expr::attribute(PathAttr::kUtil);
        if (attr.text == "lat") return Expr::attribute(PathAttr::kLat);
        if (attr.text == "len") return Expr::attribute(PathAttr::kLen);
        throw ParseError("unknown path attribute 'path." + attr.text +
                             "' (expected util, lat, or len)",
                         attr.offset);
      }
      case TokenKind::kMin:
      case TokenKind::kMax: {
        const BinOp op = kind() == TokenKind::kMin ? BinOp::kMin : BinOp::kMax;
        advance();
        expect(TokenKind::kLParen);
        ExprPtr a = parse_expression();
        expect(TokenKind::kComma);
        ExprPtr b = parse_expression();
        expect(TokenKind::kRParen);
        return Expr::binop(op, std::move(a), std::move(b));
      }
      case TokenKind::kIf:
        return parse_if();
      case TokenKind::kLParen: {
        advance();
        ExprPtr first = parse_expression();
        if (accept(TokenKind::kComma)) {
          std::vector<ExprPtr> elems;
          elems.push_back(std::move(first));
          do {
            elems.push_back(parse_expression());
          } while (accept(TokenKind::kComma));
          expect(TokenKind::kRParen);
          return Expr::tuple(std::move(elems));
        }
        expect(TokenKind::kRParen);
        return first;
      }
      default:
        fail(std::string("expected a ranking expression but found ") + token_kind_name(kind()));
    }
  }

  // ----- boolean tests ----------------------------------------------------

  TestPtr parse_test() { return parse_or_test(); }

  TestPtr parse_or_test() {
    TestPtr left = parse_and_test();
    while (accept(TokenKind::kOr)) {
      TestPtr right = parse_and_test();
      left = BoolTest::disj(std::move(left), std::move(right));
    }
    return left;
  }

  TestPtr parse_and_test() {
    TestPtr left = parse_not_test();
    while (accept(TokenKind::kAnd)) {
      TestPtr right = parse_not_test();
      left = BoolTest::conj(std::move(left), std::move(right));
    }
    return left;
  }

  TestPtr parse_not_test() {
    if (accept(TokenKind::kNot)) return BoolTest::negate(parse_not_test());
    return parse_base_test();
  }

  TestPtr parse_base_test() {
    switch (kind()) {
      case TokenKind::kIdent:
      case TokenKind::kDot:
        return BoolTest::regex_test(parse_regex_union());
      case TokenKind::kPath:
      case TokenKind::kNumber:
      case TokenKind::kInf:
      case TokenKind::kMin:
      case TokenKind::kMax:
        return parse_comparison();
      case TokenKind::kLParen: {
        // Tentatively try: regex (it may continue past the group, e.g.
        // "(A + B)* C"), then grouped boolean test, then comparison.
        const size_t save = pos_;
        try {
          return BoolTest::regex_test(parse_regex_union());
        } catch (const ParseError&) {
          pos_ = save;
        }
        try {
          advance();
          TestPtr inner = parse_test();
          expect(TokenKind::kRParen);
          return inner;
        } catch (const ParseError&) {
          pos_ = save;
        }
        return parse_comparison();
      }
      default:
        fail(std::string("expected a boolean test but found ") + token_kind_name(kind()));
    }
  }

  TestPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    BoolTest::CmpOp op;
    switch (kind()) {
      case TokenKind::kLt: op = BoolTest::CmpOp::kLt; break;
      case TokenKind::kLe: op = BoolTest::CmpOp::kLe; break;
      case TokenKind::kGt: op = BoolTest::CmpOp::kGt; break;
      case TokenKind::kGe: op = BoolTest::CmpOp::kGe; break;
      case TokenKind::kEq: op = BoolTest::CmpOp::kEq; break;
      case TokenKind::kNe: op = BoolTest::CmpOp::kNe; break;
      default:
        fail("expected a comparison operator");
    }
    advance();
    ExprPtr rhs = parse_additive();
    return BoolTest::compare(op, std::move(lhs), std::move(rhs));
  }

  // ----- regular path expressions -----------------------------------------

  RegexPtr parse_regex_union() {
    RegexPtr left = parse_regex_concat();
    while (kind() == TokenKind::kPlus) {
      advance();
      RegexPtr right = parse_regex_concat();
      left = Regex::make_union(std::move(left), std::move(right));
    }
    return left;
  }

  RegexPtr parse_regex_concat() {
    RegexPtr left = parse_regex_star();
    while (kind() == TokenKind::kIdent || kind() == TokenKind::kDot ||
           kind() == TokenKind::kLParen) {
      RegexPtr right = parse_regex_star();
      left = Regex::concat(std::move(left), std::move(right));
    }
    return left;
  }

  RegexPtr parse_regex_star() {
    RegexPtr atom = parse_regex_atom();
    while (accept(TokenKind::kStar)) atom = Regex::star(std::move(atom));
    return atom;
  }

  RegexPtr parse_regex_atom() {
    switch (kind()) {
      case TokenKind::kIdent:
        return Regex::make_node(advance().text);
      case TokenKind::kDot:
        advance();
        return Regex::dot();
      case TokenKind::kLParen: {
        advance();
        RegexPtr inner = parse_regex_union();
        expect(TokenKind::kRParen);
        return inner;
      }
      default:
        fail(std::string("expected a path expression but found ") + token_kind_name(kind()));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Policy parse_policy(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_policy();
}

RegexPtr parse_regex(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_bare_regex();
}

ExprPtr parse_expr(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_bare_expr();
}

}  // namespace contra::lang
