#include "lang/policies.h"

namespace contra::lang::policies {

Policy shortest_path() { return parse_policy("minimize(path.len)"); }

Policy min_util() { return parse_policy("minimize(path.util)"); }

Policy widest_shortest() { return parse_policy("minimize((path.util, path.len))"); }

Policy shortest_widest() { return parse_policy("minimize((path.len, path.util))"); }

Policy waypoint(const std::string& f1, const std::string& f2) {
  return parse_policy("minimize(if .* (" + f1 + " + " + f2 +
                      ") .* then path.util else inf)");
}

Policy waypoint_single(const std::string& w) {
  return parse_policy("minimize(if .* " + w + " .* then path.util else inf)");
}

Policy link_preference(const std::string& x, const std::string& y) {
  return parse_policy("minimize(if .* " + x + " " + y + " .* then path.util else inf)");
}

Policy weighted_link(const std::string& x, const std::string& y, int weight) {
  return parse_policy("minimize((if .* " + x + " " + y + " .* then " + std::to_string(weight) +
                      " else 0) + path.len)");
}

Policy source_local(const std::string& x) {
  return parse_policy("minimize(if " + x + " .* then path.util else path.lat)");
}

Policy congestion_aware() {
  return parse_policy(
      "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))");
}

Policy failover(const std::string& path1, const std::string& path2) {
  return parse_policy("minimize(if " + path1 + " then 0 else if " + path2 +
                      " then 1 else inf)");
}

}  // namespace contra::lang::policies
