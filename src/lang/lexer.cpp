#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace contra::lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"minimize", TokenKind::kMinimize}, {"if", TokenKind::kIf},
      {"then", TokenKind::kThen},         {"else", TokenKind::kElse},
      {"not", TokenKind::kNot},           {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},             {"path", TokenKind::kPath},
      {"inf", TokenKind::kInf},           {"min", TokenKind::kMin},
      {"max", TokenKind::kMax},
  };
  return map;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  auto push = [&](TokenKind kind, size_t at, std::string text = {}) {
    out.push_back(Token{.kind = kind, .text = std::move(text), .number = 0.0, .offset = at});
  };
  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // line comment
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    const size_t at = i;
    if (is_ident_start(c)) {
      size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string word(src.substr(i, j - i));
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, at, word);
      } else {
        push(TokenKind::kIdent, at, word);
      }
      i = j;
      continue;
    }
    // A number is digits, or '.' immediately followed by a digit (".8").
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (is_digit(src[j]) || (src[j] == '.' && !seen_dot))) {
        // Do not absorb '.' that begins a regex wildcard after an integer:
        // only treat '.' as part of the number when a digit follows.
        if (src[j] == '.') {
          if (j + 1 >= n || !is_digit(src[j + 1])) break;
          seen_dot = true;
        }
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(src.substr(i, j - i));
      t.number = std::stod(t.text);
      t.offset = at;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, at); ++i; break;
      case ')': push(TokenKind::kRParen, at); ++i; break;
      case ',': push(TokenKind::kComma, at); ++i; break;
      case '.': push(TokenKind::kDot, at); ++i; break;
      case '*': push(TokenKind::kStar, at); ++i; break;
      case '+': push(TokenKind::kPlus, at); ++i; break;
      case '-': push(TokenKind::kMinus, at); ++i; break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kLe, at);
          i += 2;
        } else {
          push(TokenKind::kLt, at);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kGe, at);
          i += 2;
        } else {
          push(TokenKind::kGt, at);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kEq, at);
          i += 2;
        } else {
          throw ParseError("expected '==' but found lone '='", at);
        }
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kNe, at);
          i += 2;
        } else {
          throw ParseError("expected '!=' but found lone '!'", at);
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", at);
    }
  }
  out.push_back(Token{.kind = TokenKind::kEnd, .text = "", .number = 0.0, .offset = n});
  return out;
}

}  // namespace contra::lang
