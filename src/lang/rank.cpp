#include "lang/rank.h"

#include <algorithm>

namespace contra::lang {

int Rank::compare(const Rank& a, const Rank& b) {
  if (a.infinite_ && b.infinite_) return 0;
  if (a.infinite_) return 1;
  if (b.infinite_) return -1;
  const size_t width = std::max(a.comps_.size(), b.comps_.size());
  for (size_t i = 0; i < width; ++i) {
    const util::Fixed av = i < a.comps_.size() ? a.comps_[i] : util::Fixed{};
    const util::Fixed bv = i < b.comps_.size() ? b.comps_[i] : util::Fixed{};
    if (av < bv) return -1;
    if (bv < av) return 1;
  }
  return 0;
}

Rank Rank::add(const Rank& a, const Rank& b) {
  if (a.infinite_ || b.infinite_) return infinity();
  return scalar(a.scalar_value().saturating_add(b.scalar_value()));
}

Rank Rank::sub(const Rank& a, const Rank& b) {
  if (a.infinite_ || b.infinite_) return infinity();
  return scalar(a.scalar_value().saturating_sub(b.scalar_value()));
}

Rank Rank::min(const Rank& a, const Rank& b) { return a <= b ? a : b; }

Rank Rank::max(const Rank& a, const Rank& b) { return a >= b ? a : b; }

Rank Rank::concat(const std::vector<Rank>& elems) {
  Rank out;
  for (const Rank& e : elems) {
    if (e.infinite_) return infinity();
    out.append(e);
  }
  return out;
}

std::string Rank::to_string() const {
  if (infinite_) return "inf";
  if (comps_.size() == 1) return comps_[0].to_string();
  std::string out = "(";
  for (size_t i = 0; i < comps_.size(); ++i) {
    if (i) out += ", ";
    out += comps_[i].to_string();
  }
  out += ")";
  return out;
}

}  // namespace contra::lang
