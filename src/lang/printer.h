// Pretty-printer for policies; output round-trips through the parser.
#pragma once

#include <string>

#include "lang/ast.h"

namespace contra::lang {

std::string to_string(const Policy& policy);
std::string to_string(const ExprPtr& expr);
std::string to_string(const TestPtr& test);
std::string to_string(const RegexPtr& regex);

}  // namespace contra::lang
