// Recursive-descent parser for the Contra policy language (Fig. 2).
//
// Disambiguation notes:
//  - In boolean-test position, a leading identifier or '.' starts a regular
//    path expression; 'path', a number, 'inf', 'min' or 'max' starts a
//    comparison. A leading '(' is resolved by tentative parsing with
//    backtracking (grouped test, then regex, then comparison).
//  - Regex union uses '+', which never collides with arithmetic '+' because
//    regexes and arithmetic live in disjoint grammar positions.
#pragma once

#include <string_view>

#include "lang/ast.h"
#include "lang/lexer.h"

namespace contra::lang {

/// Parses "minimize(<expr>)". Throws ParseError on malformed input.
Policy parse_policy(std::string_view source);

/// Parses a bare regular path expression (used by tests and tools).
RegexPtr parse_regex(std::string_view source);

/// Parses a bare ranking expression.
ExprPtr parse_expr(std::string_view source);

}  // namespace contra::lang
