#include "lang/token.h"

namespace contra::lang {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kMinimize: return "'minimize'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kThen: return "'then'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kPath: return "'path'";
    case TokenKind::kInf: return "'inf'";
    case TokenKind::kMin: return "'min'";
    case TokenKind::kMax: return "'max'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace contra::lang
