#include "lang/traffic_class.h"

#include <cctype>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "util/strings.h"

namespace contra::lang {

// ---------------------------------------------------------------------------
// FlowPredicate
// ---------------------------------------------------------------------------

FlowPredicatePtr FlowPredicate::any() {
  static const FlowPredicatePtr p = std::make_shared<FlowPredicate>();
  return p;
}

FlowPredicatePtr FlowPredicate::atom(Field field, uint32_t lo, uint32_t hi) {
  auto p = std::make_shared<FlowPredicate>();
  p->kind = Kind::kAtom;
  p->field = field;
  p->lo = lo;
  p->hi = hi;
  return p;
}

FlowPredicatePtr FlowPredicate::negate(FlowPredicatePtr inner) {
  auto p = std::make_shared<FlowPredicate>();
  p->kind = Kind::kNot;
  p->left = std::move(inner);
  return p;
}

FlowPredicatePtr FlowPredicate::conj(FlowPredicatePtr a, FlowPredicatePtr b) {
  auto p = std::make_shared<FlowPredicate>();
  p->kind = Kind::kAnd;
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

FlowPredicatePtr FlowPredicate::disj(FlowPredicatePtr a, FlowPredicatePtr b) {
  auto p = std::make_shared<FlowPredicate>();
  p->kind = Kind::kOr;
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

bool FlowPredicate::matches(const util::FiveTuple& tuple) const {
  switch (kind) {
    case Kind::kAny:
      return true;
    case Kind::kAtom: {
      uint32_t value = 0;
      switch (field) {
        case Field::kProtocol: value = tuple.protocol; break;
        case Field::kSrcPort: value = tuple.src_port; break;
        case Field::kDstPort: value = tuple.dst_port; break;
      }
      return value >= lo && value <= hi;
    }
    case Kind::kNot:
      return !left->matches(tuple);
    case Kind::kAnd:
      return left->matches(tuple) && right->matches(tuple);
    case Kind::kOr:
      return left->matches(tuple) || right->matches(tuple);
  }
  return false;
}

std::optional<size_t> ClassifiedPolicy::classify(const util::FiveTuple& tuple) const {
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].predicate->matches(tuple)) return i;
  }
  return std::nullopt;
}

bool ClassifiedPolicy::is_total() const {
  for (const TrafficClassRule& rule : rules) {
    if (rule.predicate->kind == FlowPredicate::Kind::kAny) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Predicate parser (dedicated mini-grammar)
// ---------------------------------------------------------------------------

namespace {

struct PredParser {
  std::string_view text;
  size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  bool accept_symbol(std::string_view symbol) {
    skip_ws();
    if (text.substr(pos, symbol.size()) == symbol) {
      pos += symbol.size();
      return true;
    }
    return false;
  }
  std::string peek_word() {
    skip_ws();
    size_t end = pos;
    while (end < text.size() && (std::isalnum(static_cast<unsigned char>(text[end])) ||
                                 text[end] == '_')) {
      ++end;
    }
    return std::string(text.substr(pos, end - pos));
  }
  bool accept_word(std::string_view word) {
    if (peek_word() == word) {
      skip_ws();
      pos += word.size();
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& message) { throw ParseError(message, pos); }

  uint32_t parse_value() {
    skip_ws();
    const std::string word = peek_word();
    if (word.empty()) fail("expected a value");
    pos += word.size();
    // Protocol aliases.
    if (word == "tcp") return 6;
    if (word == "udp") return 17;
    if (word == "icmp") return 1;
    for (char c : word) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        fail("expected a number or protocol name, found '" + word + "'");
      }
    }
    return static_cast<uint32_t>(std::stoul(word));
  }

  FlowPredicatePtr parse_or() {
    FlowPredicatePtr left = parse_and();
    while (accept_word("or")) left = FlowPredicate::disj(left, parse_and());
    return left;
  }
  FlowPredicatePtr parse_and() {
    FlowPredicatePtr left = parse_not();
    while (accept_word("and")) left = FlowPredicate::conj(left, parse_not());
    return left;
  }
  FlowPredicatePtr parse_not() {
    if (accept_word("not")) return FlowPredicate::negate(parse_not());
    return parse_atom();
  }
  FlowPredicatePtr parse_atom() {
    skip_ws();
    if (accept_symbol("(")) {
      FlowPredicatePtr inner = parse_or();
      if (!accept_symbol(")")) fail("expected ')'");
      return inner;
    }
    if (accept_symbol("*")) return FlowPredicate::any();
    FlowPredicate::Field field;
    if (accept_word("proto")) {
      field = FlowPredicate::Field::kProtocol;
    } else if (accept_word("src_port")) {
      field = FlowPredicate::Field::kSrcPort;
    } else if (accept_word("dst_port")) {
      field = FlowPredicate::Field::kDstPort;
    } else {
      fail("expected '*', 'proto', 'src_port', or 'dst_port'");
    }
    if (accept_symbol("==")) {
      const uint32_t v = parse_value();
      return FlowPredicate::atom(field, v, v);
    }
    if (accept_word("in")) {
      const uint32_t lo = parse_value();
      if (!accept_symbol("..")) fail("expected '..' in range");
      const uint32_t hi = parse_value();
      if (hi < lo) fail("empty range");
      return FlowPredicate::atom(field, lo, hi);
    }
    fail("expected '==' or 'in' after field name");
  }
};

std::string field_name(FlowPredicate::Field field) {
  switch (field) {
    case FlowPredicate::Field::kProtocol: return "proto";
    case FlowPredicate::Field::kSrcPort: return "src_port";
    case FlowPredicate::Field::kDstPort: return "dst_port";
  }
  return "?";
}

std::string print_predicate(const FlowPredicatePtr& p, int parent_prec) {
  auto wrap = [&](std::string s, int prec) {
    return prec < parent_prec ? "(" + s + ")" : s;
  };
  switch (p->kind) {
    case FlowPredicate::Kind::kAny:
      return "*";
    case FlowPredicate::Kind::kAtom:
      if (p->lo == p->hi) return field_name(p->field) + " == " + std::to_string(p->lo);
      return field_name(p->field) + " in " + std::to_string(p->lo) + " .. " +
             std::to_string(p->hi);
    case FlowPredicate::Kind::kNot:
      return wrap("not " + print_predicate(p->left, 2), 2);
    case FlowPredicate::Kind::kAnd:
      return wrap(print_predicate(p->left, 1) + " and " + print_predicate(p->right, 1), 1);
    case FlowPredicate::Kind::kOr:
      return wrap(print_predicate(p->left, 0) + " or " + print_predicate(p->right, 0), 0);
  }
  return "?";
}

/// Finds "class" as a standalone word at/after `from`; npos if absent.
size_t find_class_keyword(std::string_view text, size_t from) {
  while (true) {
    const size_t at = text.find("class", from);
    if (at == std::string_view::npos) return at;
    const bool left_ok = at == 0 || !(std::isalnum(static_cast<unsigned char>(text[at - 1])) ||
                                      text[at - 1] == '_');
    const size_t end = at + 5;
    const bool right_ok =
        end >= text.size() ||
        !(std::isalnum(static_cast<unsigned char>(text[end])) || text[end] == '_');
    if (left_ok && right_ok) return at;
    from = at + 1;
  }
}

}  // namespace

FlowPredicatePtr parse_flow_predicate(std::string_view source) {
  PredParser parser{source};
  FlowPredicatePtr p = parser.parse_or();
  if (!parser.at_end()) parser.fail("trailing input after predicate");
  return p;
}

ClassifiedPolicy parse_classified_policy(std::string_view source) {
  ClassifiedPolicy out;
  size_t at = find_class_keyword(source, 0);
  if (at == std::string_view::npos) {
    throw ParseError("classified policy needs at least one 'class' rule", 0);
  }
  while (at != std::string_view::npos) {
    const size_t body = at + 5;  // past "class"
    const size_t colon = source.find(':', body);
    if (colon == std::string_view::npos) {
      throw ParseError("missing ':' after class predicate", body);
    }
    const size_t next = find_class_keyword(source, colon + 1);
    const std::string_view pred_text = source.substr(body, colon - body);
    const std::string_view policy_text =
        source.substr(colon + 1, (next == std::string_view::npos ? source.size() : next) -
                                     colon - 1);
    TrafficClassRule rule;
    rule.predicate = parse_flow_predicate(pred_text);
    rule.policy = parse_policy(policy_text);
    rule.name = "class" + std::to_string(out.rules.size());
    out.rules.push_back(std::move(rule));
    at = next;
  }
  return out;
}

std::string to_string(const FlowPredicatePtr& predicate) {
  return print_predicate(predicate, 0);
}

std::string to_string(const ClassifiedPolicy& classified) {
  std::string out;
  for (const TrafficClassRule& rule : classified.rules) {
    out += "class " + to_string(rule.predicate) + " : " + to_string(rule.policy) + "\n";
  }
  return out;
}

}  // namespace contra::lang
