// Tokens of the Contra policy language.
#pragma once

#include <string>
#include <vector>

namespace contra::lang {

enum class TokenKind {
  kIdent,     // switch id
  kNumber,    // decimal literal (may start with '.')
  kMinimize,
  kIf,
  kThen,
  kElse,
  kNot,
  kAnd,
  kOr,
  kPath,      // the 'path' keyword in path.attr
  kInf,       // 'inf' (the paper's ∞)
  kMin,       // min(e1, e2)
  kMax,       // max(e1, e2)
  kLParen,
  kRParen,
  kComma,
  kDot,       // regex wildcard / attribute separator
  kStar,
  kPlus,
  kMinus,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,        // ==
  kNe,        // !=
  kEnd,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< identifier spelling or number literal
  double number = 0.0;   ///< kNumber only
  size_t offset = 0;     ///< byte offset in the source, for diagnostics
};

}  // namespace contra::lang
