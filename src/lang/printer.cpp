#include "lang/printer.h"

#include <cmath>
#include <cstdio>

namespace contra::lang {

namespace {

std::string number_to_string(util::Fixed v) {
  const double d = v.to_double();
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

std::string print_regex(const RegexPtr& r, int parent_prec) {
  // precedence: union(0) < concat(1) < star(2)
  auto wrap = [&](std::string s, int prec) {
    if (prec < parent_prec) return "(" + s + ")";
    return s;
  };
  switch (r->kind) {
    case Regex::Kind::kEmpty: return wrap("<empty>", 2);
    case Regex::Kind::kEpsilon: return wrap("<eps>", 2);
    case Regex::Kind::kNode: return wrap(r->node, 2);
    case Regex::Kind::kDot: return wrap(".", 2);
    case Regex::Kind::kUnion:
      return wrap(print_regex(r->left, 0) + " + " + print_regex(r->right, 0), 0);
    case Regex::Kind::kConcat:
      return wrap(print_regex(r->left, 1) + " " + print_regex(r->right, 1), 1);
    case Regex::Kind::kStar:
      return wrap(print_regex(r->left, 2) + "*", 2);
  }
  return "?";
}

std::string print_expr(const ExprPtr& e);

std::string print_test(const TestPtr& t, int parent_prec) {
  // precedence: or(0) < and(1) < not(2) < atom(3)
  auto wrap = [&](std::string s, int prec) {
    if (prec < parent_prec) return "(" + s + ")";
    return s;
  };
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
      return wrap(print_regex(t->regex, 0), 3);
    case BoolTest::Kind::kCompare:
      return wrap(print_expr(t->cmp_lhs) + " " + cmp_op_name(t->cmp) + " " +
                      print_expr(t->cmp_rhs),
                  3);
    case BoolTest::Kind::kNot:
      return wrap("not " + print_test(t->left, 2), 2);
    case BoolTest::Kind::kOr:
      return wrap(print_test(t->left, 0) + " or " + print_test(t->right, 0), 0);
    case BoolTest::Kind::kAnd:
      return wrap(print_test(t->left, 1) + " and " + print_test(t->right, 1), 1);
  }
  return "?";
}

std::string print_expr(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kConst:
      return number_to_string(e->value);
    case Expr::Kind::kInfinity:
      return "inf";
    case Expr::Kind::kAttr:
      return std::string("path.") + path_attr_name(e->attr);
    case Expr::Kind::kBinOp: {
      if (e->op == BinOp::kMin || e->op == BinOp::kMax) {
        return std::string(bin_op_name(e->op)) + "(" + print_expr(e->lhs) + ", " +
               print_expr(e->rhs) + ")";
      }
      // An `if` operand must be parenthesized: its else-branch would
      // otherwise greedily absorb the rest of the sum on reparse.
      auto operand = [](const ExprPtr& x) {
        const std::string s = print_expr(x);
        return x->kind == Expr::Kind::kIf ? "(" + s + ")" : s;
      };
      return "(" + operand(e->lhs) + " " + bin_op_name(e->op) + " " + operand(e->rhs) + ")";
    }
    case Expr::Kind::kIf:
      return "if " + print_test(e->cond, 0) + " then " + print_expr(e->then_branch) + " else " +
             print_expr(e->else_branch);
    case Expr::Kind::kTuple: {
      std::string out = "(";
      for (size_t i = 0; i < e->elems.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(e->elems[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace

std::string to_string(const Policy& policy) {
  return "minimize(" + print_expr(policy.objective) + ")";
}

std::string to_string(const ExprPtr& expr) { return print_expr(expr); }

std::string to_string(const TestPtr& test) { return print_test(test, 0); }

std::string to_string(const RegexPtr& regex) { return print_regex(regex, 0); }

}  // namespace contra::lang
