// Traffic classification — the extension the paper names as future work
// (§2 "Limitations": header predicates as in Frenetic/NetKAT).
//
// A classified policy is an ordered list of (flow predicate, policy) rules;
// the first matching rule's policy routes the flow. Predicates match packet
// header fields (protocol, ports) with equality/range atoms combined by
// `and` / `or` / `not`; `*` matches everything.
//
// Text syntax (parse_classified_policy):
//
//   class proto == udp                : minimize(path.lat)
//   class dst_port in 8000 .. 8999    : minimize((path.len, path.util))
//   class *                           : minimize(path.util)
//
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "util/hash.h"

namespace contra::lang {

struct FlowPredicate;
using FlowPredicatePtr = std::shared_ptr<const FlowPredicate>;

struct FlowPredicate {
  enum class Kind { kAny, kAtom, kNot, kAnd, kOr };
  enum class Field { kProtocol, kSrcPort, kDstPort };

  Kind kind = Kind::kAny;
  Field field = Field::kProtocol;  ///< kAtom
  uint32_t lo = 0;                 ///< kAtom: match range [lo, hi]
  uint32_t hi = 0;
  FlowPredicatePtr left, right;    ///< kNot (left) / kAnd / kOr

  static FlowPredicatePtr any();
  static FlowPredicatePtr atom(Field field, uint32_t lo, uint32_t hi);
  static FlowPredicatePtr negate(FlowPredicatePtr p);
  static FlowPredicatePtr conj(FlowPredicatePtr a, FlowPredicatePtr b);
  static FlowPredicatePtr disj(FlowPredicatePtr a, FlowPredicatePtr b);

  bool matches(const util::FiveTuple& tuple) const;
};

struct TrafficClassRule {
  FlowPredicatePtr predicate;
  Policy policy;
  std::string name;  ///< optional label, defaults to "class<i>"
};

struct ClassifiedPolicy {
  std::vector<TrafficClassRule> rules;

  /// Index of the first matching rule; nullopt when nothing matches (add a
  /// final `class *` rule to make classification total).
  std::optional<size_t> classify(const util::FiveTuple& tuple) const;

  bool is_total() const;
};

/// Parses the `class <predicate> : minimize(...)` syntax, one rule per
/// `class` keyword. Throws ParseError.
ClassifiedPolicy parse_classified_policy(std::string_view source);

/// Parses a bare flow predicate (for tests/tools).
FlowPredicatePtr parse_flow_predicate(std::string_view source);

std::string to_string(const FlowPredicatePtr& predicate);
std::string to_string(const ClassifiedPolicy& classified);

}  // namespace contra::lang
