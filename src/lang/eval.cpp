#include "lang/eval.h"

#include <algorithm>

namespace contra::lang {

namespace {

// ----- Brzozowski derivative matcher ---------------------------------------

bool nullable(const RegexPtr& r) {
  switch (r->kind) {
    case Regex::Kind::kEmpty:
    case Regex::Kind::kNode:
    case Regex::Kind::kDot:
      return false;
    case Regex::Kind::kEpsilon:
    case Regex::Kind::kStar:
      return true;
    case Regex::Kind::kUnion:
      return nullable(r->left) || nullable(r->right);
    case Regex::Kind::kConcat:
      return nullable(r->left) && nullable(r->right);
  }
  return false;
}

RegexPtr derivative(const RegexPtr& r, const std::string& symbol) {
  switch (r->kind) {
    case Regex::Kind::kEmpty:
    case Regex::Kind::kEpsilon:
      return Regex::empty();
    case Regex::Kind::kNode:
      return r->node == symbol ? Regex::epsilon() : Regex::empty();
    case Regex::Kind::kDot:
      return Regex::epsilon();
    case Regex::Kind::kUnion:
      return Regex::make_union(derivative(r->left, symbol), derivative(r->right, symbol));
    case Regex::Kind::kConcat: {
      RegexPtr first = Regex::concat(derivative(r->left, symbol), r->right);
      if (nullable(r->left)) {
        return Regex::make_union(std::move(first), derivative(r->right, symbol));
      }
      return first;
    }
    case Regex::Kind::kStar:
      return Regex::concat(derivative(r->left, symbol), r);
  }
  return Regex::empty();
}

bool evaluate_test(const TestPtr& t, const std::vector<std::string>& nodes,
                   const PathAttributes& attrs);

Rank evaluate_expr_impl(const ExprPtr& e, const std::vector<std::string>& nodes,
                        const PathAttributes& attrs) {
  switch (e->kind) {
    case Expr::Kind::kConst:
      return Rank::scalar(e->value);
    case Expr::Kind::kInfinity:
      return Rank::infinity();
    case Expr::Kind::kAttr:
      switch (e->attr) {
        case PathAttr::kUtil: return Rank::scalar(attrs.util);
        case PathAttr::kLat: return Rank::scalar(attrs.lat);
        case PathAttr::kLen: return Rank::scalar(attrs.len);
      }
      return Rank::infinity();
    case Expr::Kind::kBinOp: {
      const Rank a = evaluate_expr_impl(e->lhs, nodes, attrs);
      const Rank b = evaluate_expr_impl(e->rhs, nodes, attrs);
      switch (e->op) {
        case BinOp::kAdd: return Rank::add(a, b);
        case BinOp::kSub: return Rank::sub(a, b);
        case BinOp::kMin: return Rank::min(a, b);
        case BinOp::kMax: return Rank::max(a, b);
      }
      return Rank::infinity();
    }
    case Expr::Kind::kIf:
      return evaluate_test(e->cond, nodes, attrs)
                 ? evaluate_expr_impl(e->then_branch, nodes, attrs)
                 : evaluate_expr_impl(e->else_branch, nodes, attrs);
    case Expr::Kind::kTuple: {
      Rank out;
      for (const auto& el : e->elems) {
        out.append(evaluate_expr_impl(el, nodes, attrs));
        if (out.is_infinite()) break;  // ∞ absorbs; skip the remaining elems
      }
      return out;
    }
  }
  return Rank::infinity();
}

bool evaluate_test(const TestPtr& t, const std::vector<std::string>& nodes,
                   const PathAttributes& attrs) {
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
      return regex_matches(t->regex, nodes);
    case BoolTest::Kind::kCompare: {
      const Rank a = evaluate_expr_impl(t->cmp_lhs, nodes, attrs);
      const Rank b = evaluate_expr_impl(t->cmp_rhs, nodes, attrs);
      switch (t->cmp) {
        case BoolTest::CmpOp::kLt: return a < b;
        case BoolTest::CmpOp::kLe: return a <= b;
        case BoolTest::CmpOp::kGt: return a > b;
        case BoolTest::CmpOp::kGe: return a >= b;
        case BoolTest::CmpOp::kEq: return a == b;
        case BoolTest::CmpOp::kNe: return a != b;
      }
      return false;
    }
    case BoolTest::Kind::kNot:
      return !evaluate_test(t->left, nodes, attrs);
    case BoolTest::Kind::kOr:
      return evaluate_test(t->left, nodes, attrs) || evaluate_test(t->right, nodes, attrs);
    case BoolTest::Kind::kAnd:
      return evaluate_test(t->left, nodes, attrs) && evaluate_test(t->right, nodes, attrs);
  }
  return false;
}

}  // namespace

PathAttributes aggregate(const ConcretePath& path) {
  PathAttributes attrs;
  for (const LinkMetrics& link : path.links) {
    attrs.util = std::max(attrs.util, link.util);
    attrs.lat += link.lat;
  }
  attrs.len = static_cast<double>(path.links.size());
  return attrs;
}

bool regex_matches(const RegexPtr& regex, const std::vector<std::string>& nodes) {
  RegexPtr current = regex;
  for (const std::string& node : nodes) {
    if (current->kind == Regex::Kind::kEmpty) return false;
    current = derivative(current, node);
  }
  return nullable(current);
}

Rank evaluate_expr(const ExprPtr& expr, const std::vector<std::string>& nodes,
                   const PathAttributes& attrs) {
  return evaluate_expr_impl(expr, nodes, attrs);
}

Rank evaluate(const Policy& policy, const ConcretePath& path) {
  return evaluate_expr_impl(policy.objective, path.nodes, aggregate(path));
}

Rank evaluate_with_attrs(const Policy& policy, const std::vector<std::string>& nodes,
                         const PathAttributes& attrs) {
  return evaluate_expr_impl(policy.objective, nodes, attrs);
}

}  // namespace contra::lang
