// Abstract syntax for the Contra policy language (paper Fig. 2).
//
//   pol ::= minimize(e)
//   e   ::= n | inf | path.attr | e1 (+|-|min|max) e2 | if b then e1 else e2 | (e1,...,en)
//   b   ::= r | e1 <= e2 | not b | b1 or b2 | b1 and b2
//   r   ::= node_id | . | r1 + r2 | r1 r2 | r*
//
// Nodes are immutable and shared; the compiler freely aliases subtrees when
// decomposing policies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/fixed_point.h"

namespace contra::lang {

/// Dynamic path attributes a policy can rank on. `util` aggregates along a
/// path by max (bottleneck), `lat` and `len` by addition.
enum class PathAttr { kUtil, kLat, kLen };

const char* path_attr_name(PathAttr attr);

enum class BinOp { kAdd, kSub, kMin, kMax };

const char* bin_op_name(BinOp op);

// ---------------------------------------------------------------------------
// Regular path expressions
// ---------------------------------------------------------------------------

struct Regex;
using RegexPtr = std::shared_ptr<const Regex>;

struct Regex {
  enum class Kind {
    kEmpty,    ///< matches nothing (the zero of union)
    kEpsilon,  ///< matches the empty path
    kNode,     ///< a single switch id
    kDot,      ///< any single switch
    kUnion,    ///< r1 + r2
    kConcat,   ///< r1 r2
    kStar,     ///< r*
  };

  Kind kind = Kind::kEmpty;
  std::string node;        ///< kNode only
  RegexPtr left;           ///< kUnion / kConcat / kStar
  RegexPtr right;          ///< kUnion / kConcat

  static RegexPtr empty();
  static RegexPtr epsilon();
  static RegexPtr make_node(std::string id);
  static RegexPtr dot();
  static RegexPtr make_union(RegexPtr a, RegexPtr b);
  static RegexPtr concat(RegexPtr a, RegexPtr b);
  static RegexPtr star(RegexPtr a);
  /// Convenience: concatenation of node ids, e.g. {"A","B","D"} -> A B D.
  static RegexPtr literal_path(const std::vector<std::string>& ids);

  /// Structural equality (used to dedup regexes across a policy).
  static bool equal(const Regex& a, const Regex& b);

  /// The regex matching reversed strings (probes travel opposite to traffic;
  /// the compiler builds automata for reversed policy regexes, §4.1).
  static RegexPtr reverse(const RegexPtr& r);

  /// All node ids mentioned, in first-appearance order.
  static std::vector<std::string> mentioned_nodes(const RegexPtr& r);
};

// ---------------------------------------------------------------------------
// Boolean tests and ranking expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;
struct BoolTest;
using TestPtr = std::shared_ptr<const BoolTest>;

struct BoolTest {
  enum class Kind { kRegex, kCompare, kNot, kOr, kAnd };
  enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

  Kind kind = Kind::kRegex;
  RegexPtr regex;           ///< kRegex
  CmpOp cmp = CmpOp::kLe;   ///< kCompare
  ExprPtr cmp_lhs, cmp_rhs; ///< kCompare
  TestPtr left, right;      ///< kNot (left only) / kOr / kAnd

  static TestPtr regex_test(RegexPtr r);
  static TestPtr compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static TestPtr negate(TestPtr t);
  static TestPtr disj(TestPtr a, TestPtr b);
  static TestPtr conj(TestPtr a, TestPtr b);
};

const char* cmp_op_name(BoolTest::CmpOp op);

struct Expr {
  enum class Kind { kConst, kInfinity, kAttr, kBinOp, kIf, kTuple };

  Kind kind = Kind::kConst;
  util::Fixed value;              ///< kConst
  PathAttr attr = PathAttr::kUtil;///< kAttr
  BinOp op = BinOp::kAdd;         ///< kBinOp
  ExprPtr lhs, rhs;               ///< kBinOp
  TestPtr cond;                   ///< kIf
  ExprPtr then_branch, else_branch;
  std::vector<ExprPtr> elems;     ///< kTuple

  static ExprPtr constant(util::Fixed v);
  static ExprPtr constant(double v);
  static ExprPtr infinity();
  static ExprPtr attribute(PathAttr a);
  static ExprPtr binop(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr if_then_else(TestPtr c, ExprPtr t, ExprPtr e);
  static ExprPtr tuple(std::vector<ExprPtr> es);
};

/// A complete policy: minimize(objective).
struct Policy {
  ExprPtr objective;
};

// ---------------------------------------------------------------------------
// Structural queries used by the analyses and the compiler
// ---------------------------------------------------------------------------

/// Every distinct regex (structurally deduplicated) in evaluation order.
std::vector<RegexPtr> collect_regexes(const Policy& policy);

/// Path attributes referenced anywhere in the policy, deduplicated, in
/// first-use order.
std::vector<PathAttr> collect_attrs(const Policy& policy);

/// True if any boolean test compares dynamic attributes (a "soft constraint"
/// in the paper's terms) — the source of non-isotonicity handled by
/// decomposition.
bool has_dynamic_test(const Policy& policy);
bool expr_has_dynamic_test(const ExprPtr& e);
bool test_is_dynamic(const TestPtr& t);

/// True if the expression mentions the given attribute.
bool expr_uses_attr(const ExprPtr& e, PathAttr attr);

/// Number of AST nodes — a size measure reported by compiler stats.
size_t expr_size(const ExprPtr& e);

}  // namespace contra::lang
