// Rank values: the results of evaluating a policy on a path.
//
// A rank is either the top element ∞ (the policy forbids the path) or a
// lexicographically ordered vector of fixed-point components. Tuples in the
// language flatten into the component vector; a scalar is a one-component
// rank. Ranks of different widths compare by zero-padding the shorter one,
// which matches the paper's use of ∞ against arbitrary tuple shapes.
#pragma once

#include <string>
#include <vector>

#include "util/fixed_point.h"
#include "util/small_vector.h"

namespace contra::lang {

class Rank {
 public:
  /// Component storage. Policies almost never produce tuples wider than 4,
  /// so ranks stay heap-free on the probe-processing hot path; wider tuples
  /// spill transparently.
  using Components = util::SmallVector<util::Fixed, 4>;

  Rank() = default;

  static Rank infinity() {
    Rank r;
    r.infinite_ = true;
    return r;
  }
  static Rank scalar(util::Fixed v) {
    Rank r;
    r.comps_.push_back(v);
    return r;
  }
  static Rank scalar(double v) { return scalar(util::Fixed::from_double(v)); }
  static Rank vector(const std::vector<util::Fixed>& comps) {
    Rank r;
    r.comps_.append(comps.data(), comps.data() + comps.size());
    return r;
  }

  bool is_infinite() const { return infinite_; }
  bool is_scalar() const { return !infinite_ && comps_.size() == 1; }
  const Components& components() const { return comps_; }
  /// Scalar value; only valid when is_scalar() or width-0 (treated as 0).
  util::Fixed scalar_value() const { return comps_.empty() ? util::Fixed{} : comps_[0]; }

  /// Total-order comparison: ∞ above everything; otherwise lexicographic
  /// with zero padding.
  static int compare(const Rank& a, const Rank& b);

  friend bool operator<(const Rank& a, const Rank& b) { return compare(a, b) < 0; }
  friend bool operator>(const Rank& a, const Rank& b) { return compare(a, b) > 0; }
  friend bool operator<=(const Rank& a, const Rank& b) { return compare(a, b) <= 0; }
  friend bool operator>=(const Rank& a, const Rank& b) { return compare(a, b) >= 0; }
  friend bool operator==(const Rank& a, const Rank& b) { return compare(a, b) == 0; }
  friend bool operator!=(const Rank& a, const Rank& b) { return compare(a, b) != 0; }

  /// Scalar arithmetic lifted over ∞ (∞ absorbs + and -; min drops it).
  static Rank add(const Rank& a, const Rank& b);
  static Rank sub(const Rank& a, const Rank& b);
  static Rank min(const Rank& a, const Rank& b);
  static Rank max(const Rank& a, const Rank& b);

  /// Flattened concatenation for tuple construction; any ∞ element makes the
  /// whole tuple ∞ (a forbidden component forbids the path).
  static Rank concat(const std::vector<Rank>& elems);

  /// In-place tuple construction: appends `next`'s components to this rank;
  /// an ∞ element makes the whole rank ∞. The allocation-free path the
  /// evaluator uses instead of materializing a std::vector<Rank>.
  void append(const Rank& next) {
    if (next.infinite_) {
      infinite_ = true;
      comps_.clear();
      return;
    }
    if (!infinite_) comps_.append(next.comps_.begin(), next.comps_.end());
  }

  std::string to_string() const;

 private:
  bool infinite_ = false;
  Components comps_;
};

}  // namespace contra::lang
