#include "lang/ast.h"

#include <algorithm>

namespace contra::lang {

const char* path_attr_name(PathAttr attr) {
  switch (attr) {
    case PathAttr::kUtil: return "util";
    case PathAttr::kLat: return "lat";
    case PathAttr::kLen: return "len";
  }
  return "?";
}

const char* bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
  }
  return "?";
}

const char* cmp_op_name(BoolTest::CmpOp op) {
  switch (op) {
    case BoolTest::CmpOp::kLt: return "<";
    case BoolTest::CmpOp::kLe: return "<=";
    case BoolTest::CmpOp::kGt: return ">";
    case BoolTest::CmpOp::kGe: return ">=";
    case BoolTest::CmpOp::kEq: return "==";
    case BoolTest::CmpOp::kNe: return "!=";
  }
  return "?";
}

// --------------------------------------------------------------------------
// Regex factories
// --------------------------------------------------------------------------

RegexPtr Regex::empty() {
  static const RegexPtr r = std::make_shared<Regex>(Regex{.kind = Kind::kEmpty});
  return r;
}

RegexPtr Regex::epsilon() {
  static const RegexPtr r = std::make_shared<Regex>(Regex{.kind = Kind::kEpsilon});
  return r;
}

RegexPtr Regex::make_node(std::string id) {
  auto r = std::make_shared<Regex>();
  r->kind = Kind::kNode;
  r->node = std::move(id);
  return r;
}

RegexPtr Regex::dot() {
  static const RegexPtr r = std::make_shared<Regex>(Regex{.kind = Kind::kDot});
  return r;
}

RegexPtr Regex::make_union(RegexPtr a, RegexPtr b) {
  if (a->kind == Kind::kEmpty) return b;
  if (b->kind == Kind::kEmpty) return a;
  auto r = std::make_shared<Regex>();
  r->kind = Kind::kUnion;
  r->left = std::move(a);
  r->right = std::move(b);
  return r;
}

RegexPtr Regex::concat(RegexPtr a, RegexPtr b) {
  if (a->kind == Kind::kEmpty || b->kind == Kind::kEmpty) return empty();
  if (a->kind == Kind::kEpsilon) return b;
  if (b->kind == Kind::kEpsilon) return a;
  auto r = std::make_shared<Regex>();
  r->kind = Kind::kConcat;
  r->left = std::move(a);
  r->right = std::move(b);
  return r;
}

RegexPtr Regex::star(RegexPtr a) {
  if (a->kind == Kind::kEmpty || a->kind == Kind::kEpsilon) return epsilon();
  if (a->kind == Kind::kStar) return a;
  auto r = std::make_shared<Regex>();
  r->kind = Kind::kStar;
  r->left = std::move(a);
  return r;
}

RegexPtr Regex::literal_path(const std::vector<std::string>& ids) {
  RegexPtr r = epsilon();
  for (const auto& id : ids) r = concat(r, make_node(id));
  return r;
}

bool Regex::equal(const Regex& a, const Regex& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
    case Kind::kDot:
      return true;
    case Kind::kNode:
      return a.node == b.node;
    case Kind::kStar:
      return equal(*a.left, *b.left);
    case Kind::kUnion:
    case Kind::kConcat:
      return equal(*a.left, *b.left) && equal(*a.right, *b.right);
  }
  return false;
}

RegexPtr Regex::reverse(const RegexPtr& r) {
  switch (r->kind) {
    case Kind::kEmpty:
    case Kind::kEpsilon:
    case Kind::kNode:
    case Kind::kDot:
      return r;
    case Kind::kUnion:
      return make_union(reverse(r->left), reverse(r->right));
    case Kind::kConcat:
      return concat(reverse(r->right), reverse(r->left));
    case Kind::kStar:
      return star(reverse(r->left));
  }
  return empty();
}

std::vector<std::string> Regex::mentioned_nodes(const RegexPtr& r) {
  std::vector<std::string> out;
  auto visit = [&](auto&& self, const RegexPtr& cur) -> void {
    if (!cur) return;
    if (cur->kind == Kind::kNode) {
      if (std::find(out.begin(), out.end(), cur->node) == out.end()) out.push_back(cur->node);
    }
    self(self, cur->left);
    self(self, cur->right);
  };
  visit(visit, r);
  return out;
}

// --------------------------------------------------------------------------
// Test factories
// --------------------------------------------------------------------------

TestPtr BoolTest::regex_test(RegexPtr r) {
  auto t = std::make_shared<BoolTest>();
  t->kind = Kind::kRegex;
  t->regex = std::move(r);
  return t;
}

TestPtr BoolTest::compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto t = std::make_shared<BoolTest>();
  t->kind = Kind::kCompare;
  t->cmp = op;
  t->cmp_lhs = std::move(lhs);
  t->cmp_rhs = std::move(rhs);
  return t;
}

TestPtr BoolTest::negate(TestPtr inner) {
  auto t = std::make_shared<BoolTest>();
  t->kind = Kind::kNot;
  t->left = std::move(inner);
  return t;
}

TestPtr BoolTest::disj(TestPtr a, TestPtr b) {
  auto t = std::make_shared<BoolTest>();
  t->kind = Kind::kOr;
  t->left = std::move(a);
  t->right = std::move(b);
  return t;
}

TestPtr BoolTest::conj(TestPtr a, TestPtr b) {
  auto t = std::make_shared<BoolTest>();
  t->kind = Kind::kAnd;
  t->left = std::move(a);
  t->right = std::move(b);
  return t;
}

// --------------------------------------------------------------------------
// Expression factories
// --------------------------------------------------------------------------

ExprPtr Expr::constant(util::Fixed v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->value = v;
  return e;
}

ExprPtr Expr::constant(double v) { return constant(util::Fixed::from_double(v)); }

ExprPtr Expr::infinity() {
  static const ExprPtr e = std::make_shared<Expr>(Expr{.kind = Kind::kInfinity});
  return e;
}

ExprPtr Expr::attribute(PathAttr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAttr;
  e->attr = a;
  return e;
}

ExprPtr Expr::binop(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinOp;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::if_then_else(TestPtr c, ExprPtr t, ExprPtr els) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kIf;
  e->cond = std::move(c);
  e->then_branch = std::move(t);
  e->else_branch = std::move(els);
  return e;
}

ExprPtr Expr::tuple(std::vector<ExprPtr> es) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kTuple;
  e->elems = std::move(es);
  return e;
}

// --------------------------------------------------------------------------
// Structural queries
// --------------------------------------------------------------------------

namespace {

void collect_regexes_test(const TestPtr& t, std::vector<RegexPtr>& out);

void collect_regexes_expr(const ExprPtr& e, std::vector<RegexPtr>& out) {
  if (!e) return;
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      return;
    case Expr::Kind::kBinOp:
      collect_regexes_expr(e->lhs, out);
      collect_regexes_expr(e->rhs, out);
      return;
    case Expr::Kind::kIf:
      collect_regexes_test(e->cond, out);
      collect_regexes_expr(e->then_branch, out);
      collect_regexes_expr(e->else_branch, out);
      return;
    case Expr::Kind::kTuple:
      for (const auto& el : e->elems) collect_regexes_expr(el, out);
      return;
  }
}

void collect_regexes_test(const TestPtr& t, std::vector<RegexPtr>& out) {
  if (!t) return;
  switch (t->kind) {
    case BoolTest::Kind::kRegex: {
      for (const auto& r : out)
        if (Regex::equal(*r, *t->regex)) return;
      out.push_back(t->regex);
      return;
    }
    case BoolTest::Kind::kCompare:
      collect_regexes_expr(t->cmp_lhs, out);
      collect_regexes_expr(t->cmp_rhs, out);
      return;
    case BoolTest::Kind::kNot:
      collect_regexes_test(t->left, out);
      return;
    case BoolTest::Kind::kOr:
    case BoolTest::Kind::kAnd:
      collect_regexes_test(t->left, out);
      collect_regexes_test(t->right, out);
      return;
  }
}

void collect_attrs_test(const TestPtr& t, std::vector<PathAttr>& out);

void collect_attrs_expr(const ExprPtr& e, std::vector<PathAttr>& out) {
  if (!e) return;
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
      return;
    case Expr::Kind::kAttr:
      if (std::find(out.begin(), out.end(), e->attr) == out.end()) out.push_back(e->attr);
      return;
    case Expr::Kind::kBinOp:
      collect_attrs_expr(e->lhs, out);
      collect_attrs_expr(e->rhs, out);
      return;
    case Expr::Kind::kIf:
      collect_attrs_test(e->cond, out);
      collect_attrs_expr(e->then_branch, out);
      collect_attrs_expr(e->else_branch, out);
      return;
    case Expr::Kind::kTuple:
      for (const auto& el : e->elems) collect_attrs_expr(el, out);
      return;
  }
}

void collect_attrs_test(const TestPtr& t, std::vector<PathAttr>& out) {
  if (!t) return;
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
      return;
    case BoolTest::Kind::kCompare:
      collect_attrs_expr(t->cmp_lhs, out);
      collect_attrs_expr(t->cmp_rhs, out);
      return;
    case BoolTest::Kind::kNot:
      collect_attrs_test(t->left, out);
      return;
    case BoolTest::Kind::kOr:
    case BoolTest::Kind::kAnd:
      collect_attrs_test(t->left, out);
      collect_attrs_test(t->right, out);
      return;
  }
}

}  // namespace

std::vector<RegexPtr> collect_regexes(const Policy& policy) {
  std::vector<RegexPtr> out;
  collect_regexes_expr(policy.objective, out);
  return out;
}

std::vector<PathAttr> collect_attrs(const Policy& policy) {
  std::vector<PathAttr> out;
  collect_attrs_expr(policy.objective, out);
  return out;
}

bool test_is_dynamic(const TestPtr& t) {
  if (!t) return false;
  switch (t->kind) {
    case BoolTest::Kind::kRegex:
      return false;
    case BoolTest::Kind::kCompare:
      // A comparison is dynamic if either side mentions an attribute or
      // contains a dynamic sub-test; constant-only comparisons are static.
      return expr_has_dynamic_test(t->cmp_lhs) || expr_has_dynamic_test(t->cmp_rhs) ||
             expr_uses_attr(t->cmp_lhs, PathAttr::kUtil) ||
             expr_uses_attr(t->cmp_lhs, PathAttr::kLat) ||
             expr_uses_attr(t->cmp_lhs, PathAttr::kLen) ||
             expr_uses_attr(t->cmp_rhs, PathAttr::kUtil) ||
             expr_uses_attr(t->cmp_rhs, PathAttr::kLat) ||
             expr_uses_attr(t->cmp_rhs, PathAttr::kLen);
    case BoolTest::Kind::kNot:
      return test_is_dynamic(t->left);
    case BoolTest::Kind::kOr:
    case BoolTest::Kind::kAnd:
      return test_is_dynamic(t->left) || test_is_dynamic(t->right);
  }
  return false;
}

bool expr_has_dynamic_test(const ExprPtr& e) {
  if (!e) return false;
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      return false;
    case Expr::Kind::kBinOp:
      return expr_has_dynamic_test(e->lhs) || expr_has_dynamic_test(e->rhs);
    case Expr::Kind::kIf:
      return test_is_dynamic(e->cond) || expr_has_dynamic_test(e->then_branch) ||
             expr_has_dynamic_test(e->else_branch);
    case Expr::Kind::kTuple:
      for (const auto& el : e->elems)
        if (expr_has_dynamic_test(el)) return true;
      return false;
  }
  return false;
}

bool has_dynamic_test(const Policy& policy) { return expr_has_dynamic_test(policy.objective); }

bool expr_uses_attr(const ExprPtr& e, PathAttr attr) {
  std::vector<PathAttr> attrs;
  collect_attrs_expr(e, attrs);
  return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
}

size_t expr_size(const ExprPtr& e) {
  if (!e) return 0;
  size_t n = 1;
  switch (e->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kInfinity:
    case Expr::Kind::kAttr:
      break;
    case Expr::Kind::kBinOp:
      n += expr_size(e->lhs) + expr_size(e->rhs);
      break;
    case Expr::Kind::kIf:
      n += 1 + expr_size(e->then_branch) + expr_size(e->else_branch);
      break;
    case Expr::Kind::kTuple:
      for (const auto& el : e->elems) n += expr_size(el);
      break;
  }
  return n;
}

}  // namespace contra::lang
