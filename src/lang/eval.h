// Reference (specification-level) semantics of policies.
//
// This evaluator ranks a concrete path given per-link metrics. It is the
// ground truth the compiler and the dataplane are validated against: for any
// path p, the rank the distributed protocol converges to must equal
// evaluate(policy, p).
//
// Regex matching uses Brzozowski derivatives — self-contained, no dependency
// on the automata module (which itself is tested against this matcher).
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/rank.h"

namespace contra::lang {

/// Metrics of one directed link on a path.
struct LinkMetrics {
  double util = 0.0;  ///< utilization in [0, 1] (or any max-combined metric)
  double lat = 0.0;   ///< latency contribution (additive)
};

/// A concrete path: nodes_[0] is the traffic source, nodes_.back() the
/// destination; links_[i] connects nodes_[i] -> nodes_[i+1].
struct ConcretePath {
  std::vector<std::string> nodes;
  std::vector<LinkMetrics> links;
};

/// Aggregated path attributes per the metric algebra (util: max, lat: +,
/// len: hop count).
struct PathAttributes {
  double util = 0.0;
  double lat = 0.0;
  double len = 0.0;
};

PathAttributes aggregate(const ConcretePath& path);

/// Whether the regex matches the node sequence of the path.
bool regex_matches(const RegexPtr& regex, const std::vector<std::string>& nodes);

/// Evaluates an expression given path shape (for regex tests) and attributes.
Rank evaluate_expr(const ExprPtr& expr, const std::vector<std::string>& nodes,
                   const PathAttributes& attrs);

/// Ranks a path under a policy. Lower is better; ∞ means forbidden.
Rank evaluate(const Policy& policy, const ConcretePath& path);

/// Evaluates with explicitly supplied attributes (used by analyses that
/// sample attribute space independently of a concrete link assignment).
Rank evaluate_with_attrs(const Policy& policy, const std::vector<std::string>& nodes,
                         const PathAttributes& attrs);

}  // namespace contra::lang
