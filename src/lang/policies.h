// The policy catalog from paper Fig. 3 (P1–P9), as reusable constructors.
// Node-dependent policies take the relevant switch ids as parameters.
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/parser.h"

namespace contra::lang::policies {

/// P1 — shortest path routing (RIP-style).
Policy shortest_path();

/// P2 — minimum utilization (HULA-style); "MU" in the evaluation.
Policy min_util();

/// P3 — widest shortest paths: (path.util, path.len).
Policy widest_shortest();

/// P4 — shortest widest paths: (path.len, path.util).
Policy shortest_widest();

/// P5 — waypointing through f1 or f2; "WP" in the evaluation.
Policy waypoint(const std::string& f1, const std::string& f2);

/// Waypoint through a single middlebox w: if .* w .* then path.util else inf.
Policy waypoint_single(const std::string& w);

/// P6 — link preference: only paths crossing link x-y are allowed.
Policy link_preference(const std::string& x, const std::string& y);

/// P7 — weighted link: penalize link x-y by `weight` on top of path length.
Policy weighted_link(const std::string& x, const std::string& y, int weight);

/// P8 — source-local preference: node x minimizes util, everyone else latency.
Policy source_local(const std::string& x);

/// P9 — congestion-aware routing; "CA" in the evaluation. Non-isotonic.
Policy congestion_aware();

/// Propane-style failover preference: use path1 if available, else path2.
Policy failover(const std::string& path1, const std::string& path2);

}  // namespace contra::lang::policies
