// Fig. 14 — aggregate UDP throughput across a link failure: steady streams,
// an aggregation-core link goes down at t = 50 ms, and the dataplane must
// detect (probe silence, 3 probe periods) and route around it.
//
// Expected shape (paper): throughput dips at the failure and recovers within
// ~1 ms for both Contra and Hula (detection ~0.8 ms at a 256us probe period).
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

struct Timeline {
  std::vector<double> t_ms;
  std::vector<double> gbps;
  double recovery_ms = -1.0;
};

Timeline run(Plane plane) {
  const double rate = 10e9;
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{rate, 1e-6});
  sim::SimConfig config;
  config.host_link_bps = rate;
  config.util_tau_s = 512e-6;
  sim::Simulator sim(topo, config);

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  if (plane == Plane::kContra) {
    compiled = compiler::compile("minimize((path.len, path.util))", topo);
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
    dataplane::install_contra_network(sim, compiled, *evaluator);
  } else {
    dataplane::install_hula_network(sim);
  }

  sim::TransportManager transport(sim);
  // ~4.25 Gbps aggregate across pods (paper's rate), as 4 UDP streams.
  const std::vector<sim::HostId> sources = sim::attach_hosts(
      sim, {topo.find("e0_0"), topo.find("e0_1"), topo.find("e1_0"), topo.find("e1_1")});
  const std::vector<sim::HostId> sinks = sim::attach_hosts(
      sim, {topo.find("e2_0"), topo.find("e2_1"), topo.find("e3_0"), topo.find("e3_1")});

  sim::ThroughputTimeline timeline(0.5e-3);
  transport.set_udp_receive_hook([&](sim::Time t, uint32_t bytes) { timeline.add(t, bytes); });

  sim.start();
  for (size_t i = 0; i < sources.size(); ++i) {
    transport.start_udp_flow(sources[i], sinks[i], 4.25e9 / 4, 5e-3, 80e-3);
  }

  const double fail_at = 50e-3;
  sim.events().schedule_at(fail_at, [&] {
    // Fail the busiest aggregation-core cable — the one the pinned flowlets
    // actually traverse — so the dip is visible for any plane's path choice.
    topology::LinkId busiest = topology::kInvalidLink;
    double best_util = -1.0;
    for (topology::LinkId l = 0; l < sim.topo().num_links(); ++l) {
      const auto& link = sim.topo().link(l);
      if (topology::fat_tree_layer(sim.topo(), link.from) != topology::FatTreeLayer::kAgg ||
          topology::fat_tree_layer(sim.topo(), link.to) != topology::FatTreeLayer::kCore) {
        continue;
      }
      const double util = sim.link(l).utilization();
      if (util > best_util) {
        best_util = util;
        busiest = l;
      }
    }
    sim.fail_cable(busiest);
  });
  sim.run_until(80e-3);

  Timeline out;
  const double steady = 4.25;  // Gbps
  bool dipped = false;
  for (size_t bin = static_cast<size_t>(46e-3 / timeline.bin_width());
       bin < static_cast<size_t>(60e-3 / timeline.bin_width()); ++bin) {
    const double t_ms = bin * timeline.bin_width() * 1e3;
    const double gbps = timeline.throughput_bps(bin) / 1e9;
    out.t_ms.push_back(t_ms);
    out.gbps.push_back(gbps);
    if (t_ms >= fail_at * 1e3 && gbps < steady * 0.9) dipped = true;
    if (dipped && out.recovery_ms < 0 && gbps >= steady * 0.95) {
      out.recovery_ms = t_ms - fail_at * 1e3;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Fig. 14 — aggregate UDP throughput around an agg-core link failure at\n"
      "t=50ms (4.25 Gbps offered; probe period 256us; detection 3 periods)\n\n");
  for (Plane plane : {Plane::kContra, Plane::kHula}) {
    const Timeline timeline = run(plane);
    std::printf("%s (Gbps per 0.5ms bin):\n  ", plane_name(plane));
    for (size_t i = 0; i < timeline.t_ms.size(); ++i) {
      std::printf("%.1f=%.2f ", timeline.t_ms[i], timeline.gbps[i]);
    }
    if (timeline.recovery_ms >= 0) {
      std::printf("\n  recovered to >=95%% of steady rate %.1f ms after the failure\n\n",
                  timeline.recovery_ms);
    } else {
      std::printf("\n  no dip below 90%% observed (failure off the data paths)\n\n");
    }
  }
  std::printf(
      "Expected shape: a dip right after t=50ms, recovery within ~1ms for both\n"
      "systems (paper: Contra detects at ~800us and restores throughput <1ms).\n");
  return 0;
}
