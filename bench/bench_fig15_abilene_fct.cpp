// Fig. 15 — average FCT vs load on the Abilene WAN topology: shortest-path
// routing (SP) vs SPAIN (static multipath) vs Contra with the MU policy.
//
// Expected shape (paper): SP worst (single path congests), SPAIN in between
// (static multipath), Contra best (utilization-aware spreading) — paper
// reports Contra ~31%/14% below SPAIN on web-search/cache.
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

void sweep(const workload::EmpiricalCdf& sizes, const char* title) {
  std::printf("(%s)\n", title);
  metrics::Table table({"load %", "SP (ms)", "SPAIN (ms)", "Contra MU (ms)", "SP unfinished",
                        "SPAIN unfinished", "Contra unfinished"});
  for (double load : {0.2, 0.4, 0.6, 0.8}) {
    std::vector<std::string> row{metrics::Table::num(load * 100, "%.0f")};
    std::vector<std::string> unfinished;
    for (Plane plane : {Plane::kShortestPath, Plane::kSpain, Plane::kContra}) {
      AbileneExperiment exp;
      exp.plane = plane;
      exp.sizes = &sizes;
      exp.load = load;
      exp.seed = 15;
      const ExperimentResult result = run_abilene_experiment(exp);
      row.push_back(metrics::Table::num(result.fct.mean_s * 1e3));
      unfinished.push_back(std::to_string(result.fct.incomplete));
    }
    for (auto& u : unfinished) row.push_back(std::move(u));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Fig. 15 — average FCT vs load on Abilene (11 PoPs, uniform links, four\n"
      "sender/receiver pairs across the continent; links scaled 40G -> 2G with\n"
      "flow sizes scaled to match)\n\n");
  sweep(workload::web_search_flow_sizes(), "a: web search workload");
  sweep(workload::cache_flow_sizes(), "b: cache workload");
  std::printf(
      "Expected shape: Contra(MU) < SPAIN < SP, gaps widening with load\n"
      "(paper: SPAIN ~27-33%% below SP; Contra ~14-31%% below SPAIN).\n");
  return 0;
}
