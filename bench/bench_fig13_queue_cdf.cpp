// Fig. 13 — CDF of fabric queue lengths, ECMP vs Contra, 60% web-search
// load on the asymmetric fat-tree (the Fig. 12 setting).
//
// Expected shape (paper): Contra's queues stay bounded (never near the
// 1000-MSS cap); ECMP piles onto the impaired paths and rides the cap,
// dropping traffic.
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

ExperimentResult run(Plane plane) {
  FatTreeExperiment exp;
  exp.plane = plane;
  exp.load = 0.6;
  exp.seed = 13;
  exp.fail_agg_core = true;
  exp.trace_queues = true;
  exp.duration_s = 40e-3;
  return run_fat_tree_experiment(exp);
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * (sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  return sorted[lo];
}

}  // namespace

int main() {
  std::printf(
      "Fig. 13 — queue-length CDF (MSS units), 60%% web-search load on the\n"
      "asymmetric fat-tree; queue capacity 1000 MSS\n\n");

  metrics::Table table({"system", "p50", "p90", "p97", "p99", "max", "CDF@100", "CDF@400",
                        "CDF@1000", "drops"});
  for (Plane plane : {Plane::kEcmp, Plane::kContra}) {
    const ExperimentResult result = run(plane);
    std::vector<double> sorted = result.queue_samples_mss;
    std::sort(sorted.begin(), sorted.end());
    auto cdf_at = [&](double x) {
      const size_t n =
          std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin();
      return sorted.empty() ? 0.0 : static_cast<double>(n) / sorted.size();
    };
    table.add_row({plane_name(plane), metrics::Table::num(quantile(sorted, 0.5), "%.1f"),
                   metrics::Table::num(quantile(sorted, 0.9), "%.1f"),
                   metrics::Table::num(quantile(sorted, 0.97), "%.1f"),
                   metrics::Table::num(quantile(sorted, 0.99), "%.1f"),
                   metrics::Table::num(sorted.empty() ? 0 : sorted.back(), "%.1f"),
                   metrics::Table::num(cdf_at(100), "%.3f"),
                   metrics::Table::num(cdf_at(400), "%.3f"),
                   metrics::Table::num(cdf_at(1000), "%.3f"),
                   std::to_string(result.fabric_drops)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: Contra's distribution sits far left of ECMP's; ECMP has\n"
      "substantial mass near the 1000-MSS cap (paper: >1000 MSS 97%% of the time)\n"
      "and a non-zero drop count.\n");
  return 0;
}
