// Canonical perf gate for the discrete-event core (see DESIGN.md,
// "Simulator performance architecture"). Three scenarios stress the three
// hot-path layers:
//
//   event_throughput — self-rescheduling timers; pure EventQueue
//       schedule/dispatch cost, no packets.
//   link_saturation  — two switches ping-ponging a window of packets over
//       one cable; the per-packet-hop path (enqueue, serialize, propagate,
//       deliver) with allocation accounting per hop.
//   probe_flood      — a k=4 fat-tree running the Contra dataplane with an
//       aggressive probe period and no workload; the probe fan-out path
//       that multiplies event counts in every figure benchmark.
//   probe_flood_telemetry_off — the same flood, but the scenario also
//       *verifies* the telemetry contract: counters are compiled in and
//       advancing, no trace sink is attached, and the measured window does
//       exactly zero heap allocations. A regression here fails the bench
//       binary itself (exit 1), not just the compare_bench gate.
//
// Emits machine-readable JSON (default BENCH_core.json) so future PRs can
// regress against this one with tools/compare_bench.py. Pass
// --baseline-json <file> to embed a previous run (e.g. the pre-rewrite
// core) under "baseline" in the output.
//
// Uses only the public simulator API on purpose: the same source measures
// the std::function core before the zero-allocation rewrite and the SBO
// core after it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/telemetry.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "topology/generators.h"
#include "util/alloc_probe.h"

CONTRA_DEFINE_COUNTING_ALLOC_HOOKS()

namespace contra::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;
  double wall_s = 0.0;
  double allocs_per_event = 0.0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
};

// ---- event_throughput ------------------------------------------------------

ScenarioResult run_event_throughput(uint64_t total_events) {
  sim::EventQueue queue;
  // 64 interleaved periodic timers with co-prime-ish periods: the heap stays
  // populated and events arrive in nontrivial order.
  constexpr int kTimers = 64;
  uint64_t remaining = total_events;
  struct Timer {
    sim::EventQueue* queue;
    uint64_t* remaining;
    double period;
    void fire() {
      if (*remaining == 0) return;
      --*remaining;
      queue->schedule_in(period, [this] { fire(); });
    }
  };
  std::vector<Timer> timers(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers[i] = Timer{&queue, &remaining, 1e-6 * (17 + i)};
    timers[i].fire();
  }
  const auto start = Clock::now();
  const uint64_t allocs_before = util::alloc_count();
  while (queue.step()) {
  }
  ScenarioResult result;
  result.name = "event_throughput";
  result.wall_s = seconds_since(start);
  result.events = queue.events_processed();
  result.allocs_per_event =
      result.events ? double(util::alloc_count() - allocs_before) / result.events : 0.0;
  return result;
}

// ---- link_saturation -------------------------------------------------------

/// Bounces every arriving packet straight back out on a fixed link.
class Bouncer : public sim::Device {
 public:
  explicit Bouncer(topology::LinkId out) : out_(out) {}
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId) override {
    ++bounced;
    sim.send_on_link(out_, std::move(packet));
  }
  const char* kind_name() const override { return "bouncer"; }
  uint64_t bounced = 0;

 private:
  topology::LinkId out_;
};

ScenarioResult run_link_saturation(double sim_seconds) {
  const topology::Topology topo = topology::line(2);
  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  const topology::LinkId l01 = topo.link_between(0, 1);
  const topology::LinkId l10 = topo.link_between(1, 0);
  auto b0 = std::make_unique<Bouncer>(l01);
  auto b1 = std::make_unique<Bouncer>(l10);
  Bouncer* counter = b1.get();
  sim.install_switch(0, std::move(b0));
  sim.install_switch(1, std::move(b1));

  // A window of packets in flight keeps the link busy both directions.
  for (int i = 0; i < 32; ++i) {
    sim::Packet p;
    p.id = sim.next_packet_id();
    p.size_bytes = 1500;
    sim.send_on_link(l01, std::move(p));
  }
  // Warm up pools, heap storage, and deque/ring chunks before counting.
  sim.run_until(sim_seconds * 0.1);
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t hops_before = counter->bounced;
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(sim_seconds * 1.1);
  ScenarioResult result;
  result.name = "link_saturation";
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  const uint64_t hops = counter->bounced - hops_before;
  result.allocs_per_event =
      hops ? double(util::alloc_count() - allocs_before) / hops : 0.0;
  return result;
}

// ---- probe_flood -----------------------------------------------------------

ScenarioResult run_probe_flood_impl(const char* name, double sim_seconds,
                                    bool verify_telemetry_contract) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;  // 4x the paper's rate: a deliberate flood
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();

  // Warm up: tables converge, pools and probe fan-out paths fill.
  sim.run_until(sim_seconds * 0.1);
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t probes_before =
      sim.telemetry().metrics().value(sim.telemetry().core().probes_received);
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(sim_seconds * 1.1);
  // Snapshot the counter before touching anything that may itself allocate
  // (assigning a >SSO-length scenario name to result.name does).
  const uint64_t allocs = util::alloc_count() - allocs_before;
  ScenarioResult result;
  result.name = name;
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  result.allocs_per_event = result.events ? double(allocs) / result.events : 0.0;

  if (verify_telemetry_contract) {
    // The always-on counters must actually be counting…
    const uint64_t probes =
        sim.telemetry().metrics().value(sim.telemetry().core().probes_received) -
        probes_before;
    if (probes == 0) {
      std::fprintf(stderr, "%s: telemetry counters did not advance\n", name);
      std::exit(1);
    }
    // …with no sink attached…
    if (sim.telemetry().tracing()) {
      std::fprintf(stderr, "%s: unexpected trace sink attached\n", name);
      std::exit(1);
    }
    // …and at exactly zero heap allocations in the measured window.
    if (allocs != 0) {
      std::fprintf(stderr, "%s: %llu allocations in measured window (want 0)\n",
                   name, static_cast<unsigned long long>(allocs));
      std::exit(1);
    }
  }
  return result;
}

ScenarioResult run_probe_flood(double sim_seconds) {
  return run_probe_flood_impl("probe_flood", sim_seconds, false);
}

// ---- parallel_scaling ------------------------------------------------------
//
// The probe flood on the sharded parallel engine (DESIGN.md §8), workers
// 1..8 at a fixed shard count. Reported under its own top-level JSON key —
// deliberately outside "scenarios", so the compare_bench.py serial gate
// never keys on machine-dependent thread scaling. Bit-identity across
// worker counts is a hard contract and fails the binary; the speedup is
// informational (this gate also runs on single-core CI machines, where no
// speedup is physically possible).

struct ScalingRun {
  uint32_t workers = 0;
  uint64_t events = 0;
  double wall_s = 0.0;
  double allocs_per_event = 0.0;
  uint64_t digest = 0;  ///< per-link traffic digest: the determinism check

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
};

ScalingRun run_parallel_probe_flood(const topology::Topology& topo,
                                    const compiler::CompileResult& compiled,
                                    const pg::PolicyEvaluator& evaluator, uint32_t workers,
                                    uint32_t shards, double sim_seconds) {
  sim::SimConfig config;
  config.workers = workers;
  config.shards = shards;
  sim::ParallelSimulator psim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
  });
  psim.start();

  psim.run_until(sim_seconds * 0.1);  // warm-up: pools, mailboxes, heaps
  const uint64_t events_before = psim.events_processed();
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  psim.run_until(sim_seconds * 1.1);
  const uint64_t allocs = util::alloc_count() - allocs_before;

  ScalingRun run;
  run.workers = workers;
  run.wall_s = seconds_since(start);
  run.events = psim.events_processed() - events_before;
  run.allocs_per_event = run.events ? double(allocs) / run.events : 0.0;
  uint64_t h = 1469598103934665603ull;  // FNV-1a over merged link traffic
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(run.events);
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    uint64_t tx_packets = 0, tx_bytes = 0, drops = 0;
    for (uint32_t s = 0; s < psim.num_shards(); ++s) {
      const sim::LinkStats& ls = psim.shard_sim(s).link(id).stats();
      tx_packets += ls.tx_packets;
      tx_bytes += ls.tx_bytes;
      drops += ls.drops;
    }
    mix(tx_packets);
    mix(tx_bytes);
    mix(drops);
  }
  run.digest = h;
  return run;
}

std::string run_parallel_scaling(double sim_seconds) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  constexpr uint32_t kShards = 4;

  std::vector<ScalingRun> runs;
  for (const uint32_t workers : {1u, 2u, 4u, 8u}) {
    runs.push_back(
        run_parallel_probe_flood(topo, compiled, evaluator, workers, kShards, sim_seconds));
  }

  bool identical = true;
  for (const ScalingRun& run : runs) {
    if (run.digest != runs.front().digest || run.events != runs.front().events) {
      identical = false;
    }
  }
  if (!identical) {
    std::fprintf(stderr, "parallel_scaling: worker counts disagree — determinism broken\n");
    std::exit(1);
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup_w4 =
      runs[2].wall_s > 0 ? runs[0].wall_s / runs[2].wall_s : 0.0;
  for (const ScalingRun& run : runs) {
    std::printf("parallel_scaling w=%u %9llu events  %8.4f s  %12.0f ev/s  %.4f allocs/event\n",
                run.workers, static_cast<unsigned long long>(run.events), run.wall_s,
                run.events_per_sec(), run.allocs_per_event);
  }
  std::printf("parallel_scaling: bit-identical across workers, speedup(w4)=%.2fx on %u cores\n",
              speedup_w4, cores);

  std::ostringstream os;
  os << "{\n    \"shards\": " << kShards << ",\n    \"hardware_concurrency\": " << cores
     << ",\n    \"bit_identical\": true,\n    \"speedup_w4\": " << speedup_w4
     << ",\n    \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScalingRun& run = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "      {\"workers\": %u, \"events\": %llu, \"wall_s\": %.6f, "
                  "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
                  "\"digest\": \"%016llx\"}%s\n",
                  run.workers, static_cast<unsigned long long>(run.events), run.wall_s,
                  run.events_per_sec(), run.allocs_per_event,
                  static_cast<unsigned long long>(run.digest),
                  i + 1 < runs.size() ? "," : "");
    os << buf;
  }
  os << "    ]\n  }";
  return os.str();
}

ScenarioResult run_probe_flood_telemetry_off(double sim_seconds) {
  return run_probe_flood_impl("probe_flood_telemetry_off", sim_seconds, true);
}

// ---- driver ----------------------------------------------------------------

void write_json(const std::string& path, const std::string& label,
                const std::vector<ScenarioResult>& results,
                const std::string& scaling_blob, const std::string& baseline_blob) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"core_speed\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"scenarios\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"events\": %llu, \"wall_s\": %.6f, "
                  "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec(), r.allocs_per_event,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  }";
  if (!scaling_blob.empty()) out << ",\n  \"parallel_scaling\": " << scaling_blob;
  if (!baseline_blob.empty()) out << ",\n  \"baseline\": " << baseline_blob;
  out << "\n}\n";

  std::ofstream file(path);
  file << out.str();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::string label = "core";
  std::string baseline_path;
  int repeats = 3;
  uint64_t timer_events = 2'000'000;
  double sim_seconds = 20e-3;
  bool run_scaling = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--out") out_path = next();
    else if (arg == "--label") label = next();
    else if (arg == "--baseline-json") baseline_path = next();
    else if (arg == "--repeats") repeats = std::atoi(next());
    else if (arg == "--events") timer_events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--sim-seconds") sim_seconds = std::atof(next());
    else if (arg == "--no-scaling") run_scaling = false;
    else {
      std::fprintf(stderr,
                   "usage: bench_core_speed [--out file] [--label name] "
                   "[--baseline-json file] [--repeats n] [--events n] "
                   "[--sim-seconds s] [--no-scaling]\n");
      return 2;
    }
  }

  // Best-of-N: wall-clock noise only ever slows a run down.
  std::vector<ScenarioResult> best;
  for (int rep = 0; rep < repeats; ++rep) {
    std::vector<ScenarioResult> round;
    round.push_back(run_event_throughput(timer_events));
    round.push_back(run_link_saturation(sim_seconds));
    round.push_back(run_probe_flood(sim_seconds));
    round.push_back(run_probe_flood_telemetry_off(sim_seconds));
    if (best.empty()) {
      best = round;
    } else {
      for (size_t i = 0; i < round.size(); ++i) {
        if (round[i].wall_s < best[i].wall_s) best[i] = round[i];
      }
    }
  }

  for (const ScenarioResult& r : best) {
    std::printf("%-18s %9llu events  %8.4f s  %12.0f ev/s  %.4f allocs/event\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec(), r.allocs_per_event);
  }

  const std::string scaling_blob = run_scaling ? run_parallel_scaling(sim_seconds) : "";

  std::string baseline_blob;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::ostringstream blob;
    blob << in.rdbuf();
    baseline_blob = blob.str();
    while (!baseline_blob.empty() &&
           (baseline_blob.back() == '\n' || baseline_blob.back() == ' ')) {
      baseline_blob.pop_back();
    }
  }
  write_json(out_path, label, best, scaling_blob, baseline_blob);
  return 0;
}

}  // namespace
}  // namespace contra::bench

int main(int argc, char** argv) { return contra::bench::main(argc, argv); }
