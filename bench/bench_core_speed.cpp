// Canonical perf gate for the discrete-event core (see DESIGN.md,
// "Simulator performance architecture"). Three scenarios stress the three
// hot-path layers:
//
//   event_throughput — self-rescheduling timers; pure EventQueue
//       schedule/dispatch cost, no packets.
//   link_saturation  — two switches ping-ponging a window of packets over
//       one cable; the per-packet-hop path (enqueue, serialize, propagate,
//       deliver) with allocation accounting per hop.
//   probe_flood      — a k=4 fat-tree running the Contra dataplane with an
//       aggressive probe period and no workload; the probe fan-out path
//       that multiplies event counts in every figure benchmark.
//   probe_flood_telemetry_off — the same flood, but the scenario also
//       *verifies* the telemetry contract: counters are compiled in and
//       advancing, no trace sink is attached, and the measured window does
//       exactly zero heap allocations. A regression here fails the bench
//       binary itself (exit 1), not just the compare_bench gate.
//   probe_flood_flowtrack_off — the flood with the flow-telemetry machinery
//       attached but disabled (transport wired, no FlowTracker, path
//       sampling off): the hook branches must stay free — zero allocations
//       in the measured window, same exit-1 hard gate.
//
// Emits machine-readable JSON (default BENCH_core.json) so future PRs can
// regress against this one with tools/compare_bench.py. Pass
// --baseline-json <file> to embed a previous run (e.g. the pre-rewrite
// core) under "baseline" in the output.
//
// Uses only the public simulator API on purpose: the same source measures
// the std::function core before the zero-allocation rewrite and the SBO
// core after it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/telemetry.h"
#include "oracle/quiesce.h"
#include "sim/churn_engine.h"
#include "sim/fluid.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "util/alloc_probe.h"
#include "workload/generator.h"

CONTRA_DEFINE_COUNTING_ALLOC_HOOKS()

namespace contra::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;
  double wall_s = 0.0;
  double allocs_per_event = 0.0;

  // Probe-flood extras (has_probe_stats gates JSON emission). probes_per_s is
  // workload-normalized: the probe deliveries the *unsuppressed* protocol
  // performs for the simulated interval, divided by this run's wall time —
  // "same converged routing state, delivered faster". probes_received is the
  // raw delivery count actually processed (suppression shrinks it).
  bool has_probe_stats = false;
  uint64_t probes_received = 0;
  uint64_t probes_suppressed = 0;
  uint64_t dense_fallback_hits = 0;
  uint64_t workload_probes = 0;  ///< unsuppressed deliveries for the same interval
  double fwdt_lookup_ns = 0.0;   ///< measured only in the canonical probe_flood
  uint64_t usable_digest = 0;    ///< usable-FwdT fixed point at scenario end
  std::string extra_json;        ///< scenario-specific keys, emitted verbatim

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
  double probes_per_s() const {
    return wall_s > 0 ? workload_probes / wall_s : 0.0;
  }
  /// Fraction of the unsuppressed workload's deliveries elided network-wide.
  /// One advert-unchanged elision cancels the whole downstream flood subtree,
  /// so this is larger than the locally counted probes_suppressed / received.
  double probe_suppression_rate() const {
    return workload_probes > probes_received
               ? 1.0 - double(probes_received) / workload_probes
               : 0.0;
  }
};

// ---- event_throughput ------------------------------------------------------

ScenarioResult run_event_throughput(uint64_t total_events) {
  sim::EventQueue queue;
  // 64 interleaved periodic timers with co-prime-ish periods: the heap stays
  // populated and events arrive in nontrivial order.
  constexpr int kTimers = 64;
  uint64_t remaining = total_events;
  struct Timer {
    sim::EventQueue* queue;
    uint64_t* remaining;
    double period;
    void fire() {
      if (*remaining == 0) return;
      --*remaining;
      queue->schedule_in(period, [this] { fire(); });
    }
  };
  std::vector<Timer> timers(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers[i] = Timer{&queue, &remaining, 1e-6 * (17 + i)};
    timers[i].fire();
  }
  const auto start = Clock::now();
  const uint64_t allocs_before = util::alloc_count();
  while (queue.step()) {
  }
  ScenarioResult result;
  result.name = "event_throughput";
  result.wall_s = seconds_since(start);
  result.events = queue.events_processed();
  result.allocs_per_event =
      result.events ? double(util::alloc_count() - allocs_before) / result.events : 0.0;
  return result;
}

// ---- link_saturation -------------------------------------------------------

/// Bounces every arriving packet straight back out on a fixed link.
class Bouncer : public sim::Device {
 public:
  explicit Bouncer(topology::LinkId out) : out_(out) {}
  void handle_packet(sim::Simulator& sim, sim::Packet&& packet,
                     topology::LinkId) override {
    ++bounced;
    sim.send_on_link(out_, std::move(packet));
  }
  const char* kind_name() const override { return "bouncer"; }
  uint64_t bounced = 0;

 private:
  topology::LinkId out_;
};

ScenarioResult run_link_saturation(double sim_seconds) {
  const topology::Topology topo = topology::line(2);
  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  const topology::LinkId l01 = topo.link_between(0, 1);
  const topology::LinkId l10 = topo.link_between(1, 0);
  auto b0 = std::make_unique<Bouncer>(l01);
  auto b1 = std::make_unique<Bouncer>(l10);
  Bouncer* counter = b1.get();
  sim.install_switch(0, std::move(b0));
  sim.install_switch(1, std::move(b1));

  // A window of packets in flight keeps the link busy both directions.
  for (int i = 0; i < 32; ++i) {
    sim::Packet p;
    p.id = sim.next_packet_id();
    p.size_bytes = 1500;
    sim.send_on_link(l01, std::move(p));
  }
  // Warm up pools, heap storage, and deque/ring chunks before counting.
  sim.run_until(sim_seconds * 0.1);
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t hops_before = counter->bounced;
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(sim_seconds * 1.1);
  ScenarioResult result;
  result.name = "link_saturation";
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  const uint64_t hops = counter->bounced - hops_before;
  result.allocs_per_event =
      hops ? double(util::alloc_count() - allocs_before) / hops : 0.0;
  return result;
}

// ---- probe_flood -----------------------------------------------------------

/// Times ContraSwitch::fwd_entry over the switch's full compiled key universe
/// (every (dst, tag, pid) the dense index addresses), ~2M lookups. A volatile
/// sink defeats dead-code elimination.
double measure_fwdt_lookup_ns(const dataplane::ContraSwitch& sw,
                              const compiler::DenseFwdIndex& dense) {
  const uint64_t universe = dense.num_rows();
  if (universe == 0) return 0.0;
  const uint64_t passes = std::max<uint64_t>(1, 2'000'000 / universe);
  volatile uintptr_t sink = 0;
  const auto start = Clock::now();
  for (uint64_t p = 0; p < passes; ++p) {
    for (topology::NodeId dst : dense.destinations) {
      for (uint32_t tag : dense.slot_tags) {
        for (uint32_t pid = 0; pid < dense.num_pids; ++pid) {
          sink = sink + reinterpret_cast<uintptr_t>(sw.fwd_entry(dst, tag, pid));
        }
      }
    }
  }
  const double wall = seconds_since(start);
  return wall * 1e9 / double(passes * universe);
}

uint64_t usable_digest_of(const std::vector<dataplane::ContraSwitch*>& switches,
                          sim::Time now) {
  const std::vector<const dataplane::ContraSwitch*> view(switches.begin(), switches.end());
  return oracle::usable_fwdt_digest(view, now);
}

ScenarioResult run_probe_flood_impl(const char* name, double sim_seconds,
                                    bool verify_telemetry_contract, bool suppression,
                                    uint64_t workload_probes, bool lookup_bench,
                                    bool triggered = false) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;  // 4x the paper's rate: a deliberate flood
  options.probe_suppression = suppression;
  options.triggered_updates = triggered;
  const std::vector<dataplane::ContraSwitch*> switches =
      dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();

  const obs::CoreMetrics& core = sim.telemetry().core();
  const obs::MetricsRegistry& metrics = sim.telemetry().metrics();
  // Warm up: tables converge, pools and probe fan-out paths fill.
  sim.run_until(sim_seconds * 0.1);
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t probes_before = metrics.value(core.probes_received);
  const uint64_t suppressed_before = metrics.value(core.probes_suppressed);
  const uint64_t fallback_before = metrics.value(core.dense_fallback_hits);
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(sim_seconds * 1.1);
  // Snapshot the counter before touching anything that may itself allocate
  // (assigning a >SSO-length scenario name to result.name does).
  const uint64_t allocs = util::alloc_count() - allocs_before;
  ScenarioResult result;
  result.name = name;
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  result.allocs_per_event = result.events ? double(allocs) / result.events : 0.0;
  result.has_probe_stats = true;
  result.probes_received = metrics.value(core.probes_received) - probes_before;
  result.probes_suppressed = metrics.value(core.probes_suppressed) - suppressed_before;
  result.dense_fallback_hits = metrics.value(core.dense_fallback_hits) - fallback_before;
  result.workload_probes = workload_probes ? workload_probes : result.probes_received;
  result.usable_digest = usable_digest_of(switches, sim.now());
  if (lookup_bench && !switches.empty()) {
    const dataplane::ContraSwitch& sw = *switches.front();
    result.fwdt_lookup_ns =
        measure_fwdt_lookup_ns(sw, compiled.switches[sw.node_id()].dense);
  }

  if (verify_telemetry_contract) {
    // The always-on counters must actually be counting…
    if (result.probes_received == 0) {
      std::fprintf(stderr, "%s: telemetry counters did not advance\n", name);
      std::exit(1);
    }
    // …with no sink attached…
    if (sim.telemetry().tracing()) {
      std::fprintf(stderr, "%s: unexpected trace sink attached\n", name);
      std::exit(1);
    }
    // …and at exactly zero heap allocations in the measured window.
    if (allocs != 0) {
      std::fprintf(stderr, "%s: %llu allocations in measured window (want 0)\n",
                   name, static_cast<unsigned long long>(allocs));
      std::exit(1);
    }
  }
  return result;
}

/// Legacy protocol semantics (no delta-suppression) on the dense tables:
/// measures the unsuppressed probe workload the suppressed runs normalize
/// against, and isolates the dense-table speedup from the suppression win.
ScenarioResult run_probe_flood_nosuppress(double sim_seconds) {
  return run_probe_flood_impl("probe_flood_nosuppress", sim_seconds, false,
                              /*suppression=*/false, /*workload_probes=*/0,
                              /*lookup_bench=*/false);
}

/// The canonical probe_flood now runs the triggered engine (§12): same
/// converged routing state, delivered with keepalive-only steady traffic. Its
/// probes_per_s stays normalized to the unsuppressed workload — "the same
/// interval's routing protocol work, done in this much wall time".
ScenarioResult run_probe_flood(double sim_seconds, uint64_t workload_probes) {
  return run_probe_flood_impl("probe_flood", sim_seconds, false,
                              /*suppression=*/true, workload_probes,
                              /*lookup_bench=*/true, /*triggered=*/true);
}

/// The PR 5 periodic engine (delta-suppression, no triggers), kept for A/B:
/// its fixed point must be bit-identical to the triggered probe_flood's.
ScenarioResult run_probe_flood_periodic(double sim_seconds, uint64_t workload_probes) {
  return run_probe_flood_impl("probe_flood_periodic", sim_seconds, false,
                              /*suppression=*/true, workload_probes,
                              /*lookup_bench=*/false);
}

// ---- probe_steady_state / probe_failure_wave -------------------------------
//
// The two triggered-update acceptance scenarios (§12). Each runs the periodic
// and triggered engines on the same k=4 fat-tree and compares a measured
// window:
//
//   probe_steady_state — post-convergence window with no events. Hard gates:
//       triggered mode delivers >=90% fewer probes than the periodic
//       (suppressed) engine, the two usable-FwdT fixed points are
//       bit-identical, and the triggered window performs zero allocations.
//   probe_failure_wave — one agg-core cable fails mid-run. Hard gate: the
//       triggered failure wave costs fewer probe deliveries than the
//       periodic engine spends over the same recovery window.

struct ModeWindow {
  uint64_t probes = 0;
  uint64_t events = 0;
  double wall_s = 0.0;
  uint64_t allocs = 0;
  uint64_t digest = 0;
};

template <typename Mutate>
ModeWindow run_mode_window(bool triggered, double converge_s, double window_s,
                           Mutate&& mutate) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;
  options.probe_suppression = true;
  options.triggered_updates = triggered;
  const std::vector<dataplane::ContraSwitch*> switches =
      dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();
  const obs::CoreMetrics& core = sim.telemetry().core();
  const obs::MetricsRegistry& metrics = sim.telemetry().metrics();
  sim.run_until(converge_s);
  mutate(sim, topo);
  const uint64_t probes_before = metrics.value(core.probes_received);
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(converge_s + window_s);
  ModeWindow w;
  w.allocs = util::alloc_count() - allocs_before;
  w.wall_s = seconds_since(start);
  w.probes = metrics.value(core.probes_received) - probes_before;
  w.events = sim.events().events_processed() - events_before;
  w.digest = usable_digest_of(switches, sim.now());
  return w;
}

ScenarioResult run_probe_steady_state(double sim_seconds) {
  const double converge_s = sim_seconds * 0.4;
  auto noop = [](sim::Simulator&, const topology::Topology&) {};
  const ModeWindow periodic = run_mode_window(false, converge_s, sim_seconds, noop);
  const ModeWindow trig = run_mode_window(true, converge_s, sim_seconds, noop);

  const double reduction =
      periodic.probes > 0 ? 1.0 - double(trig.probes) / double(periodic.probes) : 0.0;
  const bool digest_match = periodic.digest == trig.digest;
  if (reduction < 0.9) {
    std::fprintf(stderr,
                 "probe_steady_state: triggered reduction %.4f < 0.90 "
                 "(periodic %llu probes, triggered %llu)\n",
                 reduction, static_cast<unsigned long long>(periodic.probes),
                 static_cast<unsigned long long>(trig.probes));
    std::exit(1);
  }
  if (!digest_match) {
    std::fprintf(stderr,
                 "probe_steady_state: triggered/periodic usable-FwdT fixed "
                 "points differ (%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(trig.digest),
                 static_cast<unsigned long long>(periodic.digest));
    std::exit(1);
  }
  if (trig.allocs != 0) {
    std::fprintf(stderr, "probe_steady_state: %llu allocations in triggered window (want 0)\n",
                 static_cast<unsigned long long>(trig.allocs));
    std::exit(1);
  }

  ScenarioResult result;
  result.name = "probe_steady_state";
  result.events = trig.events;
  result.wall_s = trig.wall_s;
  result.allocs_per_event = trig.events ? double(trig.allocs) / trig.events : 0.0;
  result.has_probe_stats = true;
  result.probes_received = trig.probes;
  result.workload_probes = periodic.probes;  // probes_per_s vs the periodic window
  result.usable_digest = trig.digest;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ", \"steady_state_reduction\": %.4f, \"digest_match\": true", reduction);
  result.extra_json = buf;
  return result;
}

ScenarioResult run_probe_failure_wave(double sim_seconds) {
  const double converge_s = sim_seconds * 0.4;
  const double wave_s = sim_seconds * 0.3;
  auto fail_agg_core = [](sim::Simulator& sim, const topology::Topology& topo) {
    sim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c0")));
  };
  const ModeWindow periodic = run_mode_window(false, converge_s, wave_s, fail_agg_core);
  const ModeWindow trig = run_mode_window(true, converge_s, wave_s, fail_agg_core);

  if (trig.probes >= periodic.probes) {
    std::fprintf(stderr,
                 "probe_failure_wave: triggered wave (%llu probes) not cheaper "
                 "than periodic (%llu)\n",
                 static_cast<unsigned long long>(trig.probes),
                 static_cast<unsigned long long>(periodic.probes));
    std::exit(1);
  }

  ScenarioResult result;
  result.name = "probe_failure_wave";
  result.events = trig.events;
  result.wall_s = trig.wall_s;
  result.allocs_per_event = trig.events ? double(trig.allocs) / trig.events : 0.0;
  result.has_probe_stats = true;
  result.probes_received = trig.probes;
  result.workload_probes = periodic.probes;
  result.usable_digest = trig.digest;
  char buf[160];
  std::snprintf(buf, sizeof buf, ", \"wave_ratio\": %.4f",
                periodic.probes ? double(trig.probes) / periodic.probes : 0.0);
  result.extra_json = buf;
  return result;
}

// ---- churn_waves -----------------------------------------------------------
//
// Adversarial churn acceptance (DESIGN.md §13): a strictly monotonic policy
// on the k=4 fat-tree rides out four fault waves — a link flap, a
// whole-switch SRG, a gray failure, and a control-plane restart — and must
// return to the all-links-up usable-FwdT fixed point after every wave, under
// both the periodic and the triggered engine. A wave that fails to
// reconverge fails the binary: this scenario is first a correctness gate
// (the reconvergence contract under churn) and only then a perf number.

struct ChurnModeRun {
  uint64_t events = 0;
  double wall_s = 0.0;
  uint64_t digest = 0;  ///< all-links-up fixed point, re-verified per wave
};

ChurnModeRun run_churn_mode(bool triggered, double converge_s, double wave_s) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;
  options.probe_suppression = true;
  options.triggered_updates = triggered;
  if (triggered) {
    // Short keepalive window so every protocol timing window (restart's
    // version-reset escape and the scaled metric expiry included) fits well
    // inside one wave.
    options.keepalive_rounds = 4;
    options.holddown_periods = 2.0;
  }
  const std::vector<dataplane::ContraSwitch*> switches =
      dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();
  sim.run_until(converge_s);
  const uint64_t baseline = usable_digest_of(switches, sim.now());

  const auto link = [&](const char* a, const char* b) {
    return topo.link_between(topo.find(a), topo.find(b));
  };
  sim::ChurnEngine churn(topo);
  const double w0 = converge_s;
  churn.flap(link("e0_0", "a0_0"), w0 + 0.05 * wave_s, 0.1 * wave_s, 2);
  const double w1 = converge_s + wave_s;
  churn.srg_switch(topo.find("a0_0"), w1 + 0.05 * wave_s, w1 + 0.45 * wave_s);
  const double w2 = converge_s + 2 * wave_s;
  sim::GrayParams gray;
  gray.loss_prob = 0.3;
  gray.extra_delay_s = 50e-6;
  gray.capacity_factor = 0.5;
  churn.gray(link("a0_1", "c2"), w2 + 0.05 * wave_s, w2 + 0.45 * wave_s, gray);
  const double w3 = converge_s + 3 * wave_s;
  churn.restart(topo.find("a1_0"), w3 + 0.05 * wave_s);
  churn.arm(sim);

  const uint64_t events_before = sim.events().events_processed();
  const auto start = Clock::now();
  for (int wave = 0; wave < 4; ++wave) {
    sim.run_until(converge_s + (wave + 1) * wave_s);
    const uint64_t digest = usable_digest_of(switches, sim.now());
    if (digest != baseline) {
      std::fprintf(stderr,
                   "churn_waves: %s engine did not reconverge after wave %d "
                   "(%016llx vs baseline %016llx)\n",
                   triggered ? "triggered" : "periodic", wave,
                   static_cast<unsigned long long>(digest),
                   static_cast<unsigned long long>(baseline));
      std::exit(1);
    }
  }
  ChurnModeRun run;
  run.wall_s = seconds_since(start);
  run.events = sim.events().events_processed() - events_before;
  run.digest = baseline;
  return run;
}

ScenarioResult run_churn_waves(double sim_seconds) {
  // Floors sized to the slowest protocol window in play: the triggered
  // engine's scaled metric expiry (12 periods x keepalive_rounds x 64 us ~=
  // 3.1 ms) must fit between a wave's last restore and its digest check.
  const double converge_s = std::max(3e-3, sim_seconds * 0.15);
  const double wave_s = std::max(8e-3, sim_seconds * 0.2);
  const ChurnModeRun periodic = run_churn_mode(false, converge_s, wave_s);
  const ChurnModeRun trig = run_churn_mode(true, converge_s, wave_s);
  // Strictly monotonic policy => unique fixed point: both engines must land
  // on the same all-links-up digest they each reconverged to per wave.
  if (periodic.digest != trig.digest) {
    std::fprintf(stderr,
                 "churn_waves: triggered fixed point %016llx != periodic %016llx\n",
                 static_cast<unsigned long long>(trig.digest),
                 static_cast<unsigned long long>(periodic.digest));
    std::exit(1);
  }
  ScenarioResult result;
  result.name = "churn_waves";
  result.events = trig.events;
  result.wall_s = trig.wall_s;
  result.allocs_per_event = 0.0;
  result.usable_digest = trig.digest;
  result.extra_json = ", \"waves\": 4, \"modes\": 2, \"digest_match\": true";
  return result;
}

// ---- parallel_scaling ------------------------------------------------------
//
// The probe flood on the sharded parallel engine (DESIGN.md §8), workers
// 1..8 at a fixed shard count. Reported under its own top-level JSON key —
// deliberately outside "scenarios", so the compare_bench.py serial gate
// never keys on machine-dependent thread scaling. Bit-identity across
// worker counts is a hard contract and fails the binary; the speedup is
// informational (this gate also runs on single-core CI machines, where no
// speedup is physically possible).

struct ScalingRun {
  uint32_t workers = 0;
  uint64_t events = 0;
  double wall_s = 0.0;
  double allocs_per_event = 0.0;
  uint64_t digest = 0;  ///< per-link traffic digest: the determinism check

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
};

ScalingRun run_parallel_probe_flood(const topology::Topology& topo,
                                    const compiler::CompileResult& compiled,
                                    const pg::PolicyEvaluator& evaluator, uint32_t workers,
                                    uint32_t shards, double sim_seconds) {
  sim::SimConfig config;
  config.workers = workers;
  config.shards = shards;
  sim::ParallelSimulator psim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
  });
  psim.start();

  psim.run_until(sim_seconds * 0.1);  // warm-up: pools, mailboxes, heaps
  const uint64_t events_before = psim.events_processed();
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  psim.run_until(sim_seconds * 1.1);
  const uint64_t allocs = util::alloc_count() - allocs_before;

  ScalingRun run;
  run.workers = workers;
  run.wall_s = seconds_since(start);
  run.events = psim.events_processed() - events_before;
  run.allocs_per_event = run.events ? double(allocs) / run.events : 0.0;
  uint64_t h = 1469598103934665603ull;  // FNV-1a over merged link traffic
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(run.events);
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    uint64_t tx_packets = 0, tx_bytes = 0, drops = 0;
    for (uint32_t s = 0; s < psim.num_shards(); ++s) {
      const sim::LinkStats& ls = psim.shard_sim(s).link(id).stats();
      tx_packets += ls.tx_packets;
      tx_bytes += ls.tx_bytes;
      drops += ls.drops;
    }
    mix(tx_packets);
    mix(tx_bytes);
    mix(drops);
  }
  run.digest = h;
  return run;
}

// ---- lookahead A/B ---------------------------------------------------------
//
// Barrier-count comparison of the per-channel lookahead scheduler against
// the legacy global-min epoch grid, on a heterogeneous-delay topology (three
// clusters chained by a narrow 3.1us and a wide 97us cut channel — the shape
// the per-channel horizon matrix exists for). Digest equality is a hard
// gate; the barrier reduction is the reported win.

struct LookaheadAb {
  uint64_t phases_channel = 0;
  uint64_t phases_global_min = 0;
  uint64_t idle_skips = 0;
  uint64_t digest_channel = 0;
  uint64_t digest_global_min = 0;
  double sim_seconds = 0.0;

  double barrier_reduction() const {
    return phases_channel > 0 ? double(phases_global_min) / phases_channel : 0.0;
  }
};

topology::Topology heterogeneous_chain() {
  topology::Topology topo;
  std::vector<topology::NodeId> nodes;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(topo.add_node(std::string(1, char('a' + c)) + std::to_string(i)));
    }
  }
  const double intra[3] = {1.3e-6, 1.7e-6, 2.3e-6};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 3; ++i) {
      topo.add_link(nodes[c * 4 + i], nodes[c * 4 + i + 1], 10e9, intra[c]);
    }
    topo.add_link(nodes[c * 4], nodes[c * 4 + 2], 10e9, intra[c] * 1.5);
  }
  topo.add_link(nodes[3], nodes[4], 10e9, 3.1e-6);  // narrow cut channel
  topo.add_link(nodes[7], nodes[8], 10e9, 97e-6);   // wide cut channel
  return topo;
}

LookaheadAb run_lookahead_ab(double sim_seconds) {
  const topology::Topology topo = heterogeneous_chain();
  const compiler::CompileResult compiled = compiler::compile("minimize(path.len)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  LookaheadAb ab;
  ab.sim_seconds = sim_seconds;
  for (const bool global_min : {false, true}) {
    sim::SimConfig config;
    config.shards = 3;
    config.workers = 2;
    config.global_min_epochs = global_min;
    sim::ParallelSimulator psim(topo, config);
    dataplane::ContraSwitchOptions options;
    // The paper-rule probe period for WAN-ish delays; also what the unit
    // test uses, so the bench and test measure the same schedule shape.
    options.probe_period_s = 256e-6;
    psim.for_each_shard([&](sim::Simulator& shard_sim) {
      dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
    });
    psim.start();
    psim.run_until(sim_seconds);

    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(psim.events_processed());
    for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
      uint64_t tx_packets = 0, tx_bytes = 0;
      for (uint32_t s = 0; s < psim.num_shards(); ++s) {
        const sim::LinkStats& ls = psim.shard_sim(s).link(id).stats();
        tx_packets += ls.tx_packets;
        tx_bytes += ls.tx_bytes;
      }
      mix(tx_packets);
      mix(tx_bytes);
    }
    if (global_min) {
      ab.phases_global_min = psim.epochs_completed();
      ab.digest_global_min = h;
    } else {
      ab.phases_channel = psim.epochs_completed();
      ab.digest_channel = h;
      for (uint32_t s = 0; s < psim.num_shards(); ++s) {
        obs::Telemetry& tel = psim.shard_sim(s).telemetry();
        ab.idle_skips += tel.metrics().value(tel.core().par_idle_skips);
      }
    }
  }
  return ab;
}

std::string run_parallel_scaling(double sim_seconds) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  constexpr uint32_t kShards = 4;

  std::vector<ScalingRun> runs;
  for (const uint32_t workers : {1u, 2u, 4u, 8u}) {
    runs.push_back(
        run_parallel_probe_flood(topo, compiled, evaluator, workers, kShards, sim_seconds));
  }

  bool identical = true;
  for (const ScalingRun& run : runs) {
    if (run.digest != runs.front().digest || run.events != runs.front().events) {
      identical = false;
    }
  }
  if (!identical) {
    std::fprintf(stderr, "parallel_scaling: worker counts disagree — determinism broken\n");
    std::exit(1);
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup_w4 =
      runs[2].wall_s > 0 ? runs[0].wall_s / runs[2].wall_s : 0.0;
  const double speedup_w8 =
      runs[3].wall_s > 0 ? runs[0].wall_s / runs[3].wall_s : 0.0;
  // Honesty gate: a speedup number only means something when the machine has
  // the cores to deliver it. With workers > hardware_concurrency the runs
  // time-slice one another and the "speedup" measures the scheduler, not the
  // engine — mark it informational so compare tooling never fails on it.
  const bool speedup_informational = cores < 4;
  for (const ScalingRun& run : runs) {
    std::printf("parallel_scaling w=%u %9llu events  %8.4f s  %12.0f ev/s  %.4f allocs/event\n",
                run.workers, static_cast<unsigned long long>(run.events), run.wall_s,
                run.events_per_sec(), run.allocs_per_event);
  }
  std::printf(
      "parallel_scaling: bit-identical across workers, speedup(w4)=%.2fx "
      "speedup(w8)=%.2fx on %u cores%s\n",
      speedup_w4, speedup_w8, cores,
      speedup_informational ? " (informational: workers exceed cores)" : "");

  const LookaheadAb ab = run_lookahead_ab(sim_seconds);
  if (ab.digest_channel != ab.digest_global_min) {
    std::fprintf(stderr,
                 "parallel_scaling: lookahead scheduler digest diverges from "
                 "global-min grid — determinism broken\n");
    std::exit(1);
  }
  std::printf(
      "lookahead_ab: %llu phases (per-channel) vs %llu (global-min grid), "
      "%.1fx fewer barriers, %llu idle skips, digests match\n",
      static_cast<unsigned long long>(ab.phases_channel),
      static_cast<unsigned long long>(ab.phases_global_min), ab.barrier_reduction(),
      static_cast<unsigned long long>(ab.idle_skips));

  std::ostringstream os;
  os << "{\n    \"shards\": " << kShards << ",\n    \"hardware_concurrency\": " << cores
     << ",\n    \"bit_identical\": true,\n    \"speedup_w4\": " << speedup_w4
     << ",\n    \"speedup_w8\": " << speedup_w8
     << ",\n    \"speedup_informational\": " << (speedup_informational ? "true" : "false");
  {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  ",\n    \"lookahead_ab\": {\"sim_seconds\": %.6f, "
                  "\"phases_channel\": %llu, \"phases_global_min\": %llu, "
                  "\"barrier_reduction\": %.2f, \"idle_skips\": %llu, "
                  "\"digest_match\": true}",
                  ab.sim_seconds, static_cast<unsigned long long>(ab.phases_channel),
                  static_cast<unsigned long long>(ab.phases_global_min),
                  ab.barrier_reduction(), static_cast<unsigned long long>(ab.idle_skips));
    os << buf;
  }
  os << ",\n    \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScalingRun& run = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "      {\"workers\": %u, \"events\": %llu, \"wall_s\": %.6f, "
                  "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
                  "\"digest\": \"%016llx\"}%s\n",
                  run.workers, static_cast<unsigned long long>(run.events), run.wall_s,
                  run.events_per_sec(), run.allocs_per_event,
                  static_cast<unsigned long long>(run.digest),
                  i + 1 < runs.size() ? "," : "");
    os << buf;
  }
  os << "    ]\n  }";
  return os.str();
}

ScenarioResult run_probe_flood_telemetry_off(double sim_seconds, uint64_t workload_probes) {
  return run_probe_flood_impl("probe_flood_telemetry_off", sim_seconds, true,
                              /*suppression=*/true, workload_probes,
                              /*lookup_bench=*/false);
}

/// The probe flood with the dataplane flow-telemetry machinery wired up but
/// disabled — the observability overhead contract. A TransportManager is
/// attached, so every flow-telemetry hook branch (flow lifecycle, delivery
/// accounting, INT path stamping in Simulator::send_on_link) is present and
/// reachable, and a warm-up UDP burst pushes real data packets through the
/// fabric before measurement. The measured window — back at probe steady
/// state, no FlowTracker attached, path sampling off, set_flow_telemetry
/// at its default (off) — must perform exactly zero heap allocations.
/// Hard gate: any allocation exits 1, and compare_bench.py independently
/// rejects a report whose *_off scenarios carry allocs_per_event != 0.
ScenarioResult run_probe_flood_flowtrack_off(double sim_seconds, uint64_t workload_probes) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  const std::vector<sim::HostId> senders = sim::attach_hosts(sim, {topo.find("e0_0")});
  const std::vector<sim::HostId> receivers = sim::attach_hosts(sim, {topo.find("e1_1")});
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 64e-6;
  options.probe_suppression = true;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim::TransportManager transport(sim);
  // UDP burst inside the warm-up window: done and drained before measuring.
  transport.start_udp_flow(senders[0], receivers[0], /*rate_bps=*/200e6,
                           /*start_time=*/sim_seconds * 0.01,
                           /*stop_time=*/sim_seconds * 0.06);
  sim.start();

  const obs::CoreMetrics& core = sim.telemetry().core();
  const obs::MetricsRegistry& metrics = sim.telemetry().metrics();
  sim.run_until(sim_seconds * 0.1);
  if (transport.udp_bytes_received() == 0) {
    std::fprintf(stderr, "probe_flood_flowtrack_off: warm-up flow moved no data\n");
    std::exit(1);
  }
  const uint64_t events_before = sim.events().events_processed();
  const uint64_t probes_before = metrics.value(core.probes_received);
  const uint64_t suppressed_before = metrics.value(core.probes_suppressed);
  const uint64_t fallback_before = metrics.value(core.dense_fallback_hits);
  const uint64_t allocs_before = util::alloc_count();
  const auto start = Clock::now();
  sim.run_until(sim_seconds * 1.1);
  const uint64_t allocs = util::alloc_count() - allocs_before;
  ScenarioResult result;
  result.name = "probe_flood_flowtrack_off";
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  result.allocs_per_event = result.events ? double(allocs) / result.events : 0.0;
  result.has_probe_stats = true;
  result.probes_received = metrics.value(core.probes_received) - probes_before;
  result.probes_suppressed = metrics.value(core.probes_suppressed) - suppressed_before;
  result.dense_fallback_hits = metrics.value(core.dense_fallback_hits) - fallback_before;
  result.workload_probes = workload_probes ? workload_probes : result.probes_received;

  if (result.probes_received == 0) {
    std::fprintf(stderr, "probe_flood_flowtrack_off: telemetry counters did not advance\n");
    std::exit(1);
  }
  if (transport.flow_tracker() != nullptr || sim.telemetry().tracing()) {
    std::fprintf(stderr, "probe_flood_flowtrack_off: unexpected sink attached\n");
    std::exit(1);
  }
  if (allocs != 0) {
    std::fprintf(stderr, "probe_flood_flowtrack_off: %llu allocations in measured window (want 0)\n",
                 static_cast<unsigned long long>(allocs));
    std::exit(1);
  }
  return result;
}

// ---- hybrid_fabric / hybrid_leaf_spine -------------------------------------
//
// The production-scale hybrid-engine gate (DESIGN.md §14): a fat-tree k=16
// (and a datacenter leaf-spine) carrying a streamed million-flow workload
// where bulk flows advance at flow level and a deterministic 1-in-n subset
// stays packet-level. Three hard gates, each an exit-1 failure:
//
//   * event ratio — the measured window must process >= min_event_ratio x
//     fewer events than the projected pure packet-level cost of the same
//     workload (ceil(bytes/mss) data packets + as many ACKs, each crossing
//     the flow's topology-exact hop count at 2 events per link-hop);
//   * bounded RSS — VmHWM after the run stays under the scenario ceiling;
//   * zero-alloc steady state — with a settled all-fluid flow set, a window
//     of rate-recomputation quanta performs exactly zero heap allocations.

/// Peak resident set (VmHWM) of this process, in MiB.
uint64_t vm_hwm_mib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) / 1024;
    }
  }
  return 0;
}

struct HybridScaleSpec {
  const char* name = "";
  uint64_t target_flows = 0;
  uint32_t sample_every = 256;   ///< 1-in-n flows kept packet-level
  double min_event_ratio = 50.0;
  uint64_t rss_ceiling_mib = 0;
  /// Topology-exact link hops for a host pair (including both host links) —
  /// the projection's per-flow multiplier.
  uint32_t (*hops)(sim::HostId, sim::HostId) = nullptr;
};

ScenarioResult run_hybrid_scale(const topology::Topology& topo, const HybridScaleSpec& spec) {
  const compiler::CompileResult compiled = compiler::compile("minimize(path.len)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  sim::Simulator sim(topo, config);
  std::vector<sim::HostId> hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
  if (hosts.empty()) hosts = sim::attach_hosts_to_leaves(sim, 2);

  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 1024e-6;
  options.probe_suppression = true;
  options.triggered_updates = true;
  // One keepalive flood on a k=16 fabric is ~1.3M probe deliveries (320
  // origins x fabric-wide reach); at the default 33 ms cadence the liveness
  // backstop, not the workload, would dominate the event count. Half a
  // second is still far tighter than production routing keepalives.
  options.keepalive_rounds = 512;
  dataplane::install_contra_network(sim, compiled, evaluator, options);

  sim::TransportConfig tconfig;
  tconfig.hybrid = true;
  tconfig.hybrid_sample_every = spec.sample_every;
  sim::TransportManager transport(sim, tconfig);
  sim.start();

  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  const workload::EmpiricalCdf& sizes = workload::web_search_flow_sizes();
  workload::WorkloadConfig wl;
  wl.load = 0.5;
  wl.sender_capacity_bps = 10e9 / 4;
  wl.start = 100 * options.probe_period_s;
  wl.seed = 1;
  wl.size_scale = 0.01;
  // Arrival rate is load * capacity / mean_flow_bits per sender (the
  // generator's own formula): size the window so the stream emits
  // ~target_flows arrivals.
  const double bits_per_flow = sizes.mean_bytes() * 8.0 * wl.size_scale;
  const double arrivals_per_s =
      double(senders.size()) * wl.load * wl.sender_capacity_bps / bits_per_flow;
  wl.duration = double(spec.target_flows) / arrivals_per_s;
  workload::FlowStream stream(sizes, senders, receivers, wl);

  sim.run_until(wl.start);  // control-plane convergence, pools, dense tables

  constexpr uint64_t kMss = 1460;
  uint64_t projected = 0;
  const uint64_t events_before = sim.events().events_processed();
  const auto start = Clock::now();
  workload::GeneratedFlow flow;
  const double end = wl.start + wl.duration;
  const double chunk = std::max(wl.duration / 256, 1e-3);
  while (stream.next_start() < end) {
    const double window = stream.next_start() + chunk;
    while (stream.next_start() < window) {
      stream.next(&flow);
      const uint64_t pkts = (flow.bytes + kMss - 1) / kMss;
      // Pure packet-level projection: data packets plus per-packet ACKs,
      // each crossing every link of the flow's path at 2 events per hop.
      projected += pkts * 2 * spec.hops(flow.src, flow.dst) * 2;
      transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
    }
    sim.run_until(std::min(end, window));
  }
  sim.run_until(end);
  // Drain: analytic fluid tails plus the sampled packet-level subset.
  sim::FluidEngine* fluid = transport.fluid_engine();
  for (int i = 0; i < 400; ++i) {
    if (fluid->active_flows() == 0 && transport.completed_flows().size() == stream.emitted()) {
      break;
    }
    sim.run_until(sim.now() + 5e-3);
  }
  if (transport.completed_flows().size() != stream.emitted()) {
    std::fprintf(stderr, "%s: %zu of %llu flows completed after drain\n", spec.name,
                 transport.completed_flows().size(),
                 static_cast<unsigned long long>(stream.emitted()));
    std::exit(1);
  }

  ScenarioResult result;
  result.name = spec.name;
  result.wall_s = seconds_since(start);
  result.events = sim.events().events_processed() - events_before;
  // A pure packet-level run keeps the identical control plane but replaces
  // the fluid flows (and their quantum ticks) with full per-packet cost:
  //   pure = actual − sampled-subset data events − fluid ticks + projected.
  // The sampled subset is statistically 1/n of the same projection.
  const sim::FluidStats& fs = transport.fluid_engine()->stats();
  const double sampled_est = double(projected) / double(spec.sample_every);
  const double pure_events =
      double(result.events) - sampled_est - double(fs.ticks) + double(projected);
  const double ratio = result.events ? pure_events / double(result.events) : 0.0;
  const uint64_t rss_mib = vm_hwm_mib();
  if (ratio < spec.min_event_ratio) {
    std::fprintf(stderr, "%s: event ratio %.1fx < %.0fx (projected %llu, actual %llu)\n",
                 spec.name, ratio, spec.min_event_ratio,
                 static_cast<unsigned long long>(projected),
                 static_cast<unsigned long long>(result.events));
    std::exit(1);
  }
  if (rss_mib > spec.rss_ceiling_mib) {
    std::fprintf(stderr, "%s: peak RSS %llu MiB exceeds the %llu MiB ceiling\n", spec.name,
                 static_cast<unsigned long long>(rss_mib),
                 static_cast<unsigned long long>(spec.rss_ceiling_mib));
    std::exit(1);
  }

  // Steady-state zero-alloc window: park a fixed all-fluid flow set (bytes
  // far beyond the window, no admissions, no completions) and let the engine
  // tick; once warm, a rate-recomputation quantum must allocate nothing.
  transport.use_fluid(fluid, 0);
  const double quantum = transport.config().fluid_quantum_s;
  const double t0 = sim.now() + 1e-3;
  for (uint32_t i = 0; i < 512; ++i) {
    transport.start_flow(senders[i % senders.size()], receivers[(i * 7 + 3) % receivers.size()],
                         uint64_t(1) << 40, t0 + double(i) * 1e-7);
  }
  sim.run_until(t0 + 16 * quantum);  // admit + warm the water-fill scratch
  const uint64_t allocs_before = util::alloc_count();
  sim.run_until(t0 + 80 * quantum);
  const uint64_t window_allocs = util::alloc_count() - allocs_before;
  if (window_allocs != 0) {
    std::fprintf(stderr, "%s: %llu allocations in steady-state fluid window (want 0)\n",
                 spec.name, static_cast<unsigned long long>(window_allocs));
    std::exit(1);
  }

  std::ostringstream extra;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                ", \"flows\": %llu, \"fluid_flows\": %llu, \"packet_flows\": %llu, "
                "\"projected_packet_events\": %llu, \"event_ratio\": %.1f, "
                "\"rss_peak_mib\": %llu, \"rss_ceiling_mib\": %llu, "
                "\"steady_window_allocs\": %llu, \"fluid_ticks\": %llu, "
                "\"fluid_digest\": \"%016llx\"",
                static_cast<unsigned long long>(stream.emitted()),
                static_cast<unsigned long long>(fs.flows_completed),
                static_cast<unsigned long long>(stream.emitted() - fs.flows_completed),
                static_cast<unsigned long long>(projected), ratio,
                static_cast<unsigned long long>(rss_mib),
                static_cast<unsigned long long>(spec.rss_ceiling_mib),
                static_cast<unsigned long long>(window_allocs),
                static_cast<unsigned long long>(fs.ticks),
                static_cast<unsigned long long>(fluid->completion_digest()));
  extra << buf;
  result.extra_json = extra.str();

  std::printf("%s: %llu flows, %.1fx fewer events than packet-level projection, "
              "RSS %llu MiB (ceiling %llu), steady window 0 allocs\n",
              spec.name, static_cast<unsigned long long>(stream.emitted()), ratio,
              static_cast<unsigned long long>(rss_mib),
              static_cast<unsigned long long>(spec.rss_ceiling_mib));
  return result;
}

// Host h sits on edge/leaf switch h/2 (attach order, 2 hosts per switch).
// Fat-tree k=16: 8 edge switches per pod; same edge = 2 links, same pod = 4,
// inter-pod via core = 6 (host links included).
uint32_t fat_tree16_hops(sim::HostId a, sim::HostId b) {
  const uint32_t ea = a / 2, eb = b / 2;
  if (ea == eb) return 2;
  return ea / 8 == eb / 8 ? 4 : 6;
}

// Leaf-spine: same leaf = 2 links, otherwise leaf-spine-leaf = 4.
uint32_t leaf_spine_hops(sim::HostId a, sim::HostId b) {
  return a / 2 == b / 2 ? 2 : 4;
}

// ---- driver ----------------------------------------------------------------

void write_json(const std::string& path, const std::string& label,
                const std::vector<ScenarioResult>& results,
                const std::string& scaling_blob, const std::string& baseline_blob) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"core_speed\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"scenarios\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"events\": %llu, \"wall_s\": %.6f, "
                  "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f",
                  r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec(), r.allocs_per_event);
    out << buf;
    if (r.has_probe_stats) {
      std::snprintf(buf, sizeof buf,
                    ", \"probes_received\": %llu, \"probes_suppressed\": %llu, "
                    "\"workload_probes\": %llu, \"probes_per_s\": %.0f, "
                    "\"probe_suppression_rate\": %.4f, \"dense_fallback_hits\": %llu",
                    static_cast<unsigned long long>(r.probes_received),
                    static_cast<unsigned long long>(r.probes_suppressed),
                    static_cast<unsigned long long>(r.workload_probes), r.probes_per_s(),
                    r.probe_suppression_rate(),
                    static_cast<unsigned long long>(r.dense_fallback_hits));
      out << buf;
      if (r.fwdt_lookup_ns > 0.0) {
        std::snprintf(buf, sizeof buf, ", \"fwdt_lookup_ns\": %.2f", r.fwdt_lookup_ns);
        out << buf;
      }
    }
    out << r.extra_json;
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  }";
  if (!scaling_blob.empty()) out << ",\n  \"parallel_scaling\": " << scaling_blob;
  if (!baseline_blob.empty()) out << ",\n  \"baseline\": " << baseline_blob;
  out << "\n}\n";

  std::ofstream file(path);
  file << out.str();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::string label = "core";
  std::string baseline_path;
  int repeats = 3;
  uint64_t timer_events = 2'000'000;
  double sim_seconds = 20e-3;
  bool run_scaling = true;
  bool run_hybrid = true;
  uint64_t hybrid_flows = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--out") out_path = next();
    else if (arg == "--label") label = next();
    else if (arg == "--baseline-json") baseline_path = next();
    else if (arg == "--repeats") repeats = std::atoi(next());
    else if (arg == "--events") timer_events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--sim-seconds") sim_seconds = std::atof(next());
    else if (arg == "--no-scaling") run_scaling = false;
    else if (arg == "--no-hybrid") run_hybrid = false;
    else if (arg == "--hybrid-flows") hybrid_flows = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: bench_core_speed [--out file] [--label name] "
                   "[--baseline-json file] [--repeats n] [--events n] "
                   "[--sim-seconds s] [--no-scaling] [--no-hybrid] "
                   "[--hybrid-flows n]\n");
      return 2;
    }
  }

  // Best-of-N: wall-clock noise only ever slows a run down.
  std::vector<ScenarioResult> best;
  for (int rep = 0; rep < repeats; ++rep) {
    std::vector<ScenarioResult> round;
    round.push_back(run_event_throughput(timer_events));
    round.push_back(run_link_saturation(sim_seconds));
    // The unsuppressed flood runs first: its (deterministic) delivery count is
    // the workload numerator for the suppressed scenarios' probes_per_s.
    round.push_back(run_probe_flood_nosuppress(sim_seconds));
    const uint64_t workload_probes = round.back().probes_received;
    round.push_back(run_probe_flood(sim_seconds, workload_probes));
    round.push_back(run_probe_flood_periodic(sim_seconds, workload_probes));
    // A/B contract: the triggered engine must land on the exact usable-FwdT
    // fixed point the periodic engine computes — same fabric, same policy,
    // vastly less probe traffic. A mismatch is a protocol bug, not a perf
    // regression, so it fails the binary.
    if (round[round.size() - 2].usable_digest != round.back().usable_digest) {
      std::fprintf(stderr,
                   "probe_flood: triggered fixed point %016llx != periodic %016llx\n",
                   static_cast<unsigned long long>(round[round.size() - 2].usable_digest),
                   static_cast<unsigned long long>(round.back().usable_digest));
      return 1;
    }
    round.back().extra_json = ", \"digest_match\": true";
    round.push_back(run_probe_flood_telemetry_off(sim_seconds, workload_probes));
    round.push_back(run_probe_flood_flowtrack_off(sim_seconds, workload_probes));
    round.push_back(run_probe_steady_state(sim_seconds));
    round.push_back(run_probe_failure_wave(sim_seconds));
    round.push_back(run_churn_waves(sim_seconds));
    if (best.empty()) {
      best = round;
    } else {
      for (size_t i = 0; i < round.size(); ++i) {
        if (round[i].wall_s < best[i].wall_s) best[i] = round[i];
      }
    }
  }

  // The hybrid scale scenarios run once, outside best-of-N: convergence on
  // the k=16 fabric dominates their setup and repeating a million-flow run
  // buys no extra signal for a gate that is primarily about correctness
  // (ratio, RSS, allocs) rather than wall-clock.
  if (run_hybrid) {
    HybridScaleSpec fabric;
    fabric.name = "hybrid_fabric";
    fabric.target_flows = hybrid_flows;
    fabric.rss_ceiling_mib = 4096;
    fabric.hops = fat_tree16_hops;
    best.push_back(
        run_hybrid_scale(topology::fat_tree(16, topology::LinkParams{10e9, 1e-6}), fabric));

    HybridScaleSpec leaf;
    leaf.name = "hybrid_leaf_spine";
    leaf.target_flows = std::max<uint64_t>(hybrid_flows / 4, 10'000);
    leaf.rss_ceiling_mib = 2048;
    leaf.hops = leaf_spine_hops;
    best.push_back(
        run_hybrid_scale(topology::leaf_spine(64, 32, topology::LinkParams{10e9, 1e-6}), leaf));
  }

  for (const ScenarioResult& r : best) {
    std::printf("%-25s %9llu events  %8.4f s  %12.0f ev/s  %.4f allocs/event\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec(), r.allocs_per_event);
    if (r.has_probe_stats) {
      std::printf("%-25s %9llu probes  %12.0f probes/s  suppression %.1f%%  "
                  "fallback %llu  fwdt %.2f ns/lookup\n",
                  "", static_cast<unsigned long long>(r.probes_received), r.probes_per_s(),
                  100.0 * r.probe_suppression_rate(),
                  static_cast<unsigned long long>(r.dense_fallback_hits), r.fwdt_lookup_ns);
    }
  }

  const std::string scaling_blob = run_scaling ? run_parallel_scaling(sim_seconds) : "";

  std::string baseline_blob;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::ostringstream blob;
    blob << in.rdbuf();
    baseline_blob = blob.str();
    while (!baseline_blob.empty() &&
           (baseline_blob.back() == '\n' || baseline_blob.back() == ' ')) {
      baseline_blob.pop_back();
    }
  }
  write_json(out_path, label, best, scaling_blob, baseline_blob);
  return 0;
}

}  // namespace
}  // namespace contra::bench

int main(int argc, char** argv) { return contra::bench::main(argc, argv); }
