// Ablations of the §5 refinements — why each mechanism exists:
//   (1) versioned probes (§5.1): without them, stale good news is adopted
//       and packets loop;
//   (2) policy-aware flowlet switching (§5.3): a naive flowlet table pins
//       next hops across policy constraints, forcing policy-violation drops;
//   (3) probe period (§5.2): shorter periods react faster but cost probe
//       bandwidth; the 0.5xRTT rule marks the safe floor;
//   (4) loop-detection threshold (§5.5): lower thresholds break transient
//       loops sooner at the price of false-positive flowlet flushes.
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

// (1) + (4): fat-tree under bursty load with deliberately slow probes makes
// stale adoptions (and hence transient loops) observable.
ExperimentResult run_loops(bool versioned, uint8_t loop_threshold) {
  FatTreeExperiment exp;
  exp.plane = Plane::kContra;
  exp.contra_policy = "minimize(path.util)";  // any-path MU: loop-prone shape
  exp.load = 0.5;
  exp.seed = 21;
  exp.duration_s = 15e-3;
  exp.drain_s = 40e-3;          // unversioned runs loop; keep the tail short
  exp.probe_period_s = 512e-6;  // slower probes widen inconsistency windows
  exp.contra_options.versioned_probes = versioned;
  exp.contra_options.loop_ttl_threshold = loop_threshold;
  return run_fat_tree_experiment(exp);
}

void ablate_versioning() {
  std::printf("(1) versioned probes (§5.1) — MU policy, 50%% load, slow probes\n");
  metrics::Table table(
      {"probes", "looped pkts", "loops broken", "mean FCT (ms)", "unfinished"});
  for (bool versioned : {true, false}) {
    const ExperimentResult result = run_loops(versioned, 6);
    table.add_row({versioned ? "versioned" : "unversioned",
                   std::to_string(result.looped_packets), std::to_string(result.loops_broken),
                   metrics::Table::num(result.fct.mean_s * 1e3),
                   std::to_string(result.fct.incomplete)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

// (2) policy-aware flowlets: waypoint policy with shifting preferences.
void ablate_flowlets() {
  std::printf("(2) policy-aware flowlet switching (§5.3) — waypoint policy\n");
  // With a dot-star waypoint regex most naive-mode violations manifest as
  // detours (wrong pinned next hops), i.e. FCT inflation, rather than
  // invalid-transition drops; both columns are shown.
  metrics::Table table({"flowlet keying", "invalid-transition drops", "completed",
                        "mean FCT (ms)"});
  for (bool aware : {true, false}) {
    const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
    const compiler::CompileResult compiled =
        compiler::compile(lang::policies::waypoint("c0", "c1"), topo);
    const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

    sim::SimConfig config;
    config.host_link_bps = 10e9;
    sim::Simulator sim(topo, config);
    dataplane::ContraSwitchOptions options;
    options.policy_aware_flowlets = aware;
    auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);

    sim::TransportManager transport(sim);
    const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
    std::vector<sim::HostId> senders, receivers;
    for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);
    workload::WorkloadConfig wl;
    wl.load = 0.4;
    wl.sender_capacity_bps = 2.5e9;
    wl.start = 3e-3;
    wl.duration = 30e-3;
    wl.seed = 22;
    wl.size_scale = 0.1;
    const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                  receivers, wl);
    workload::submit(transport, flows);
    sim.start();
    sim.run_until(wl.start + wl.duration + 0.25);

    uint64_t violations = 0;
    for (const auto* sw : switches) violations += sw->stats().data_dropped_no_route;
    const auto fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
    table.add_row({aware ? "(tag,pid,fid) — paper" : "fid only — naive",
                   std::to_string(violations), std::to_string(fct.completed),
                   metrics::Table::num(fct.mean_s * 1e3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

// (3) probe period sweep.
void ablate_probe_period() {
  std::printf("(3) probe period (§5.2) — responsiveness vs probe bandwidth, 60%% load\n");
  metrics::Table table({"period (us)", "mean FCT (ms)", "probe traffic %", "unfinished"});
  for (double period_us : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    FatTreeExperiment exp;
    exp.plane = Plane::kContra;
    exp.load = 0.6;
    exp.seed = 23;
    exp.probe_period_s = period_us * 1e-6;
    const ExperimentResult result = run_fat_tree_experiment(exp);
    table.add_row({metrics::Table::num(period_us, "%.0f"),
                   metrics::Table::num(result.fct.mean_s * 1e3),
                   metrics::Table::num(result.overhead.probe_fraction() * 100, "%.2f"),
                   std::to_string(result.fct.incomplete)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

// (5) flowlet switching and packet ordering: with the flowlet gap at zero,
// every packet re-rates against the live FwdT — path flips mid-burst cause
// out-of-order delivery (the "Ordered" objective, §5.3).
void ablate_ordering() {
  std::printf("(5) flowlet gap vs packet ordering (§5.3 'Ordered') — 70%% load\n");
  metrics::Table table({"flowlet gap (us)", "reordered pkts", "mean FCT (ms)"});
  for (double gap_us : {0.0, 50.0, 200.0, 1000.0}) {
    const double rate = 10e9;
    const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{rate, 1e-6});
    const compiler::CompileResult compiled =
        compiler::compile("minimize((path.len, path.util))", topo);
    const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

    sim::SimConfig config;
    config.host_link_bps = rate;
    sim::Simulator sim(topo, config);
    dataplane::ContraSwitchOptions options;
    options.flowlet_timeout_s = gap_us * 1e-6;
    dataplane::install_contra_network(sim, compiled, evaluator, options);

    sim::TransportManager transport(sim);
    const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 4);
    std::vector<sim::HostId> senders, receivers;
    for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);
    workload::WorkloadConfig wl;
    wl.load = 0.7;
    wl.sender_capacity_bps = 4.0 * rate / senders.size();
    wl.start = 3e-3;
    wl.duration = 25e-3;
    wl.seed = 24;
    wl.size_scale = 0.1;
    const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                  receivers, wl);
    workload::submit(transport, flows);
    sim.start();
    sim.run_until(wl.start + wl.duration + 0.2);

    const auto fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
    table.add_row({metrics::Table::num(gap_us, "%.0f"),
                   std::to_string(transport.total_reordered_packets()),
                   metrics::Table::num(fct.mean_s * 1e3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

// (4) loop-detection threshold sweep.
void ablate_loop_threshold() {
  std::printf("(4) loop-detection TTL-spread threshold (§5.5) — unversioned probes\n");
  metrics::Table table({"threshold", "loops broken", "looped pkts", "mean FCT (ms)"});
  for (uint8_t threshold : {2, 4, 8, 16}) {
    const ExperimentResult result = run_loops(/*versioned=*/false, threshold);
    table.add_row({std::to_string(threshold), std::to_string(result.loops_broken),
                   std::to_string(result.looped_packets),
                   metrics::Table::num(result.fct.mean_s * 1e3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Ablations of Contra's §5 refinements\n\n");
  ablate_versioning();
  ablate_flowlets();
  ablate_probe_period();
  ablate_loop_threshold();
  ablate_ordering();
  std::printf(
      "Expected shapes: unversioned probes loop more; naive flowlets detour\n"
      "waypoint traffic (FCT inflation); shorter probe periods trade probe\n"
      "bandwidth for (mild) FCT gains; lower loop thresholds break loops\n"
      "earlier; zero flowlet gap (per-packet re-rating) causes order-of-\n"
      "magnitude more reordering than any real gap.\n");
  return 0;
}
