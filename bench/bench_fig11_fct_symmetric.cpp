// Fig. 11 — average FCT vs network load on a symmetric fat-tree, for ECMP /
// Contra / Hula under (a) the web-search workload and (b) the cache
// workload.
//
// Expected shape (paper): Contra ~= Hula, both well below ECMP at high load
// (ECMP's hash collisions build queues it never routes around).
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

void sweep(const workload::EmpiricalCdf& sizes, const char* title) {
  std::printf("(%s)\n", title);
  metrics::Table table(
      {"load %", "ECMP (ms)", "Contra (ms)", "Hula (ms)", "ECMP n", "Contra n", "Hula n"});
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    std::vector<std::string> row{metrics::Table::num(load * 100, "%.0f")};
    std::vector<std::string> counts;
    for (Plane plane : {Plane::kEcmp, Plane::kContra, Plane::kHula}) {
      FatTreeExperiment exp;
      exp.plane = plane;
      exp.sizes = &sizes;
      exp.load = load;
      exp.seed = 11;
      const ExperimentResult result = run_fat_tree_experiment(exp);
      row.push_back(metrics::Table::num(result.fct.mean_s * 1e3));
      counts.push_back(std::to_string(result.fct.completed) +
                       (result.fct.incomplete ? "(+" + std::to_string(result.fct.incomplete) +
                                                    " unfinished)"
                                              : ""));
    }
    for (auto& c : counts) row.push_back(std::move(c));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Fig. 11 — average FCT vs load, symmetric k=4 fat-tree (32 hosts, 10G links,\n"
      "probe period 256us, flowlet gap 200us; flow sizes scaled 0.1x)\n\n");
  sweep(workload::web_search_flow_sizes(), "a: web search workload");
  sweep(workload::cache_flow_sizes(), "b: cache workload");
  std::printf(
      "Expected shape: Contra ~= Hula; both beat ECMP increasingly with load\n"
      "(paper: ~30%% / ~47%% lower FCT at 90%% load for web-search / cache).\n");
  return 0;
}
