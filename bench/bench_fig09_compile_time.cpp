// Fig. 9 — compiler scalability: compile time vs topology size (20–500
// switches) for the three paper policies on (a) fat-trees and (b) random
// networks.
//
//   MU = minimum utilization (no regexes, one metric)
//   WP = waypointing (three regular expressions, one metric)
//   CA = congestion-aware (non-isotonic, two metrics)
//
// Expected shape (paper): roughly linear in topology size, seconds at
// hundreds of nodes; WP > CA > MU in cost.
#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "lang/parser.h"
#include "topology/generators.h"

namespace {

using namespace contra;

enum PolicyKind : int64_t { kMU = 0, kWP = 1, kCA = 2 };

lang::Policy make_policy(PolicyKind kind, const topology::Topology& topo) {
  switch (kind) {
    case kMU:
      return lang::parse_policy("minimize(path.util)");
    case kWP: {
      // Three regular expressions over three waypoints (paper's WP).
      const std::string w0 = topo.name(0);
      const std::string w1 = topo.name(1);
      const std::string w2 = topo.name(2);
      return lang::parse_policy("minimize(if .* " + w0 + " .* then (0, path.util) else if .* " +
                                w1 + " .* then (1, path.util) else if .* " + w2 +
                                " .* then (2, path.util) else inf)");
    }
    case kCA:
      return lang::parse_policy(
          "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))");
  }
  return lang::parse_policy("minimize(path.len)");
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case kMU: return "MU";
    case kWP: return "WP";
    case kCA: return "CA";
  }
  return "?";
}

void BM_CompileFatTree(benchmark::State& state) {
  const auto k = static_cast<uint32_t>(state.range(0));
  const auto kind = static_cast<PolicyKind>(state.range(1));
  const topology::Topology topo = topology::fat_tree(k);
  const lang::Policy policy = make_policy(kind, topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile(policy, topo));
  }
  state.SetLabel(std::string(policy_name(kind)) + " @ " + std::to_string(topo.num_nodes()) +
                 " switches");
  state.counters["switches"] = topo.num_nodes();
}

void BM_CompileRandom(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const auto kind = static_cast<PolicyKind>(state.range(1));
  const topology::Topology topo = topology::random_connected(n, 4.0, /*seed=*/7);
  const lang::Policy policy = make_policy(kind, topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile(policy, topo));
  }
  state.SetLabel(std::string(policy_name(kind)) + " @ " + std::to_string(n) + " switches");
  state.counters["switches"] = n;
}

void FatTreeArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t k : {4, 10, 14, 18, 20}) {  // 20..500 switches (paper x-axis)
    for (int64_t policy : {kMU, kWP, kCA}) bench->Args({k, policy});
  }
}

void RandomArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t n : {100, 200, 300, 400, 500}) {
    for (int64_t policy : {kMU, kWP, kCA}) bench->Args({n, policy});
  }
}

BENCHMARK(BM_CompileFatTree)->Apply(FatTreeArgs)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_CompileRandom)->Apply(RandomArgs)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
