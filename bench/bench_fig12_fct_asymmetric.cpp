// Fig. 12 — average FCT vs load on an ASYMMETRIC fat-tree (one agg-core
// link failed), ECMP / Contra / Hula, web-search and cache workloads.
//
// Expected shape (paper): ECMP suffers heavy loss beyond ~50% load (it keeps
// hashing onto the impaired pod paths); Contra and Hula route around the
// asymmetry and degrade gracefully.
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

void sweep(const workload::EmpiricalCdf& sizes, const char* title) {
  std::printf("(%s)\n", title);
  metrics::Table table({"load %", "ECMP (ms)", "Contra (ms)", "Hula (ms)", "ECMP unfinished",
                        "Contra unfinished", "Hula unfinished"});
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    std::vector<std::string> row{metrics::Table::num(load * 100, "%.0f")};
    std::vector<std::string> unfinished;
    for (Plane plane : {Plane::kEcmp, Plane::kContra, Plane::kHula}) {
      FatTreeExperiment exp;
      exp.plane = plane;
      exp.sizes = &sizes;
      exp.load = load;
      exp.seed = 12;
      exp.fail_agg_core = true;
      const ExperimentResult result = run_fat_tree_experiment(exp);
      row.push_back(metrics::Table::num(result.fct.mean_s * 1e3));
      unfinished.push_back(std::to_string(result.fct.incomplete));
    }
    for (auto& u : unfinished) row.push_back(std::move(u));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Fig. 12 — average FCT vs load, asymmetric k=4 fat-tree (link a0_0-c0 failed\n"
      "before traffic starts; otherwise the Fig. 11 setup)\n\n");
  sweep(workload::web_search_flow_sizes(), "a: web search workload");
  sweep(workload::cache_flow_sizes(), "b: cache workload");
  std::printf(
      "Expected shape: ECMP inflates sharply (paper: 3.2x / 8.7x mean FCT) and\n"
      "leaves flows unfinished at high load; Contra/Hula stay close to their\n"
      "symmetric-topology numbers (paper: ~1.7-1.8x).\n");
  return 0;
}
