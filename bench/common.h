// Shared experiment harness for the figure-reproduction benchmarks.
//
// Scale-down notes (see EXPERIMENTS.md): link rates and flow sizes are
// scaled so each figure regenerates in seconds of wall time; offered load
// fractions, topology shapes, and protocol timing ratios (probe period vs
// RTT vs flowlet gap) match the paper, so relative results are preserved.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "dataplane/ecmp_switch.h"
#include "dataplane/hula_switch.h"
#include "dataplane/spain_switch.h"
#include "dataplane/static_switch.h"
#include "lang/parser.h"
#include "lang/policies.h"
#include "metrics/counters.h"
#include "metrics/fct.h"
#include "metrics/timeline.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/tracing.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"
#include "workload/generator.h"

namespace contra::bench {

enum class Plane { kEcmp, kHula, kContra, kShortestPath, kSpain };

inline const char* plane_name(Plane plane) {
  switch (plane) {
    case Plane::kEcmp: return "ECMP";
    case Plane::kHula: return "Hula";
    case Plane::kContra: return "Contra";
    case Plane::kShortestPath: return "SP";
    case Plane::kSpain: return "SPAIN";
  }
  return "?";
}

struct FatTreeExperiment {
  Plane plane = Plane::kContra;
  /// Workload.
  const workload::EmpiricalCdf* sizes = &workload::web_search_flow_sizes();
  double load = 0.5;           ///< fraction of per-sender fair share
  double duration_s = 30e-3;
  uint64_t seed = 1;
  double size_scale = 0.1;
  /// Fabric: paper setup scaled — 32 hosts (4 per edge switch of a k=4
  /// fat-tree), 4:1-ish oversubscription via sender fair share.
  double link_rate_bps = 10e9;
  uint32_t hosts_per_edge = 4;
  /// Failure injection (Fig. 12/13): one agg-core link.
  bool fail_agg_core = false;
  /// Protocol parameters (paper §6.3): probe period 256us, flowlet 200us.
  double probe_period_s = 256e-6;
  double flowlet_timeout_s = 200e-6;
  /// Post-workload drain time (FCT stragglers). Loop-heavy ablations shrink
  /// it — looping retransmission storms make long drains expensive.
  double drain_s = 0.25;
  /// Contra policy for the fat-tree: least-utilized shortest path, i.e.
  /// (path.len, path.util) — Contra discovers shortest paths dynamically
  /// (§6.3). Overridable for ablations.
  std::string contra_policy = "minimize((path.len, path.util))";
  dataplane::ContraSwitchOptions contra_options;  ///< probe/flowlet set below
  /// Optional queue tracing (Fig. 13). Serial engine only.
  bool trace_queues = false;
  /// workers > 0 runs on the sharded parallel engine (DESIGN.md §8) with
  /// that many threads; shards = 0 picks the topology default. Results are
  /// deterministic for any worker count at a fixed shard count.
  uint32_t workers = 0;
  uint32_t shards = 0;
};

struct ExperimentResult {
  metrics::FctSummary fct;
  metrics::OverheadReport overhead;  ///< workload window only
  uint64_t fabric_drops = 0;
  uint64_t looped_packets = 0;
  uint64_t loops_broken = 0;
  uint64_t policy_drops = 0;
  uint64_t data_packets_forwarded = 0;
  uint64_t events_processed = 0;  ///< simulator events for the whole run
  std::vector<double> queue_samples_mss;
};

inline ExperimentResult run_fat_tree_experiment_parallel(const FatTreeExperiment& exp);

inline ExperimentResult run_fat_tree_experiment(const FatTreeExperiment& exp) {
  if (exp.workers > 0) return run_fat_tree_experiment_parallel(exp);
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{exp.link_rate_bps, 1e-6});

  sim::SimConfig config;
  config.host_link_bps = exp.link_rate_bps;
  config.queue_capacity_bytes = 1000ull * 1500;  // 1000 MSS (paper)
  config.util_tau_s = 2 * exp.probe_period_s;
  sim::Simulator sim(topo, config);

  const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, exp.hosts_per_edge);
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  // Fail before installing: static planes (ECMP) route on the converged
  // asymmetric topology; adaptive planes discover it via probes anyway.
  if (exp.fail_agg_core) {
    sim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c0")));
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  std::vector<dataplane::ContraSwitch*> contra_switches;
  switch (exp.plane) {
    case Plane::kEcmp:
      dataplane::install_ecmp_network(sim);
      break;
    case Plane::kShortestPath:
      dataplane::install_shortest_path_network(sim);
      break;
    case Plane::kSpain:
      dataplane::install_spain_network(sim);
      break;
    case Plane::kHula: {
      dataplane::HulaOptions options;
      options.probe_period_s = exp.probe_period_s;
      options.flowlet_timeout_s = exp.flowlet_timeout_s;
      dataplane::install_hula_network(sim, options);
      break;
    }
    case Plane::kContra: {
      compiled = compiler::compile(exp.contra_policy, topo);
      evaluator =
          std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
      dataplane::ContraSwitchOptions options = exp.contra_options;
      options.probe_period_s = exp.probe_period_s;
      options.flowlet_timeout_s = exp.flowlet_timeout_s;
      contra_switches = dataplane::install_contra_network(sim, compiled, *evaluator, options);
      break;
    }
  }

  sim::QueueLengthTracer tracer;
  sim::TransportManager transport(sim);

  // Offered load: fraction of each sender's fair share of the bisection
  // (40 Gbps bisection / 16 senders at defaults).
  const double bisection = 4.0 * exp.link_rate_bps;  // k^3/4 x rate for k=4
  workload::WorkloadConfig wl;
  wl.load = exp.load;
  wl.sender_capacity_bps = bisection / senders.size();
  wl.start = 3e-3;
  wl.duration = exp.duration_s;
  wl.seed = exp.seed;
  wl.size_scale = exp.size_scale;
  const auto flows = workload::generate_poisson(*exp.sizes, senders, receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start);
  if (exp.trace_queues) tracer.attach_fabric(sim, 1500);  // after convergence
  const sim::LinkStats window_start = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration);
  const sim::LinkStats window_end = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration + exp.drain_s);

  ExperimentResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.overhead = metrics::make_overhead_report(window_end, window_start);
  result.fabric_drops = sim.aggregate_fabric_stats().data_drops;
  for (const auto* sw : contra_switches) {
    result.looped_packets += sw->stats().looped_packets_seen;
    result.loops_broken += sw->stats().loops_broken;
    result.policy_drops += sw->stats().data_dropped_no_route;
    result.data_packets_forwarded += sw->stats().data_forwarded;
  }
  result.events_processed = sim.events().events_processed();
  result.queue_samples_mss = tracer.samples_mss();
  return result;
}

/// The same fat-tree experiment on the sharded parallel engine. Queue
/// tracing is not supported here (the tracer hooks one simulator's links);
/// everything else matches the serial harness parameter for parameter.
inline ExperimentResult run_fat_tree_experiment_parallel(const FatTreeExperiment& exp) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{exp.link_rate_bps, 1e-6});

  sim::SimConfig config;
  config.host_link_bps = exp.link_rate_bps;
  config.queue_capacity_bytes = 1000ull * 1500;
  config.util_tau_s = 2 * exp.probe_period_s;
  config.workers = exp.workers;
  config.shards = exp.shards;
  sim::ParallelSimulator psim(topo, config);

  const auto hosts = sim::attach_hosts_to_fat_tree_edges(psim, exp.hosts_per_edge);
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  if (exp.fail_agg_core) {
    psim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c0")));
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  std::vector<dataplane::ContraSwitch*> contra_switches;
  if (exp.plane == Plane::kContra) {
    compiled = compiler::compile(exp.contra_policy, topo);
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
  }
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    switch (exp.plane) {
      case Plane::kEcmp:
        dataplane::install_ecmp_network(shard_sim);
        break;
      case Plane::kShortestPath:
        dataplane::install_shortest_path_network(shard_sim);
        break;
      case Plane::kSpain:
        dataplane::install_spain_network(shard_sim);
        break;
      case Plane::kHula: {
        dataplane::HulaOptions options;
        options.probe_period_s = exp.probe_period_s;
        options.flowlet_timeout_s = exp.flowlet_timeout_s;
        dataplane::install_hula_network(shard_sim, options);
        break;
      }
      case Plane::kContra: {
        dataplane::ContraSwitchOptions options = exp.contra_options;
        options.probe_period_s = exp.probe_period_s;
        options.flowlet_timeout_s = exp.flowlet_timeout_s;
        const auto installed =
            dataplane::install_contra_network(shard_sim, compiled, *evaluator, options);
        contra_switches.insert(contra_switches.end(), installed.begin(), installed.end());
        break;
      }
    }
  });

  sim::ParallelTransport transport(psim);
  const double bisection = 4.0 * exp.link_rate_bps;
  workload::WorkloadConfig wl;
  wl.load = exp.load;
  wl.sender_capacity_bps = bisection / senders.size();
  wl.start = 3e-3;
  wl.duration = exp.duration_s;
  wl.seed = exp.seed;
  wl.size_scale = exp.size_scale;
  const auto flows = workload::generate_poisson(*exp.sizes, senders, receivers, wl);
  workload::submit(transport, flows);

  psim.start();
  psim.run_until(wl.start);
  const sim::LinkStats window_start = psim.aggregate_fabric_stats();
  psim.run_until(wl.start + wl.duration);
  const sim::LinkStats window_end = psim.aggregate_fabric_stats();
  psim.run_until(wl.start + wl.duration + exp.drain_s);

  ExperimentResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.overhead = metrics::make_overhead_report(window_end, window_start);
  result.fabric_drops = psim.aggregate_fabric_stats().data_drops;
  for (const auto* sw : contra_switches) {
    result.looped_packets += sw->stats().looped_packets_seen;
    result.loops_broken += sw->stats().loops_broken;
    result.policy_drops += sw->stats().data_dropped_no_route;
    result.data_packets_forwarded += sw->stats().data_forwarded;
  }
  result.events_processed = psim.events_processed();
  return result;
}

// ---- Abilene experiment (Fig. 15) -----------------------------------------

struct AbileneExperiment {
  Plane plane = Plane::kContra;
  const workload::EmpiricalCdf* sizes = &workload::web_search_flow_sizes();
  double load = 0.5;
  double duration_s = 40e-3;
  uint64_t seed = 1;
  double size_scale = 0.1;
  double link_rate_bps = 2e9;  ///< scaled from the paper's 40 Gbps
  double probe_period_s = 256e-6;
  /// workers > 0 runs on the sharded parallel engine (see FatTreeExperiment).
  uint32_t workers = 0;
  uint32_t shards = 0;
};

inline ExperimentResult run_abilene_experiment_parallel(const AbileneExperiment& exp);

inline ExperimentResult run_abilene_experiment(const AbileneExperiment& exp) {
  if (exp.workers > 0) return run_abilene_experiment_parallel(exp);
  // Delay scale 0.02 keeps max RTT under the probe period rule (§5.2) at
  // simulation-friendly durations while preserving relative link delays.
  const topology::Topology topo = topology::abilene(exp.link_rate_bps, 0.02);

  sim::SimConfig config;
  config.host_link_bps = exp.link_rate_bps;
  config.util_tau_s = 2 * exp.probe_period_s;
  sim::Simulator sim(topo, config);

  // Four sender/receiver pairs (paper §6.4), chosen across the continent.
  const std::vector<sim::HostId> senders = sim::attach_hosts(
      sim, {topo.find("Seattle"), topo.find("Sunnyvale"), topo.find("LosAngeles"),
            topo.find("Denver")});
  const std::vector<sim::HostId> receivers = sim::attach_hosts(
      sim, {topo.find("NewYork"), topo.find("WashingtonDC"), topo.find("Atlanta"),
            topo.find("Chicago")});

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  switch (exp.plane) {
    case Plane::kShortestPath:
      dataplane::install_shortest_path_network(sim);
      break;
    case Plane::kSpain:
      dataplane::install_spain_network(sim, 4);
      break;
    case Plane::kContra: {
      // "Contra (MU)" — pure minimum utilization; on a WAN the longer,
      // less-utilized paths are exactly the point.
      compiled = compiler::compile(lang::policies::min_util(), topo);
      evaluator =
          std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
      dataplane::ContraSwitchOptions options;
      options.probe_period_s = exp.probe_period_s;
      dataplane::install_contra_network(sim, compiled, *evaluator, options);
      break;
    }
    default:
      std::fprintf(stderr, "unsupported plane on Abilene\n");
      std::abort();
  }

  sim::TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = exp.load;
  wl.sender_capacity_bps = exp.link_rate_bps;
  wl.start = 5e-3;
  wl.duration = exp.duration_s;
  wl.seed = exp.seed;
  wl.size_scale = exp.size_scale;
  const auto flows = workload::generate_poisson(*exp.sizes, senders, receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start);
  const sim::LinkStats window_start = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration);
  const sim::LinkStats window_end = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration + 0.4);

  ExperimentResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.overhead = metrics::make_overhead_report(window_end, window_start);
  result.fabric_drops = sim.aggregate_fabric_stats().drops;
  result.events_processed = sim.events().events_processed();
  return result;
}

inline ExperimentResult run_abilene_experiment_parallel(const AbileneExperiment& exp) {
  const topology::Topology topo = topology::abilene(exp.link_rate_bps, 0.02);

  sim::SimConfig config;
  config.host_link_bps = exp.link_rate_bps;
  config.util_tau_s = 2 * exp.probe_period_s;
  config.workers = exp.workers;
  config.shards = exp.shards;
  sim::ParallelSimulator psim(topo, config);

  const std::vector<sim::HostId> senders = sim::attach_hosts(
      psim, {topo.find("Seattle"), topo.find("Sunnyvale"), topo.find("LosAngeles"),
             topo.find("Denver")});
  const std::vector<sim::HostId> receivers = sim::attach_hosts(
      psim, {topo.find("NewYork"), topo.find("WashingtonDC"), topo.find("Atlanta"),
             topo.find("Chicago")});

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  if (exp.plane == Plane::kContra) {
    compiled = compiler::compile(lang::policies::min_util(), topo);
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
  }
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    switch (exp.plane) {
      case Plane::kShortestPath:
        dataplane::install_shortest_path_network(shard_sim);
        break;
      case Plane::kSpain:
        dataplane::install_spain_network(shard_sim, 4);
        break;
      case Plane::kContra: {
        dataplane::ContraSwitchOptions options;
        options.probe_period_s = exp.probe_period_s;
        dataplane::install_contra_network(shard_sim, compiled, *evaluator, options);
        break;
      }
      default:
        std::fprintf(stderr, "unsupported plane on Abilene\n");
        std::abort();
    }
  });

  sim::ParallelTransport transport(psim);
  workload::WorkloadConfig wl;
  wl.load = exp.load;
  wl.sender_capacity_bps = exp.link_rate_bps;
  wl.start = 5e-3;
  wl.duration = exp.duration_s;
  wl.seed = exp.seed;
  wl.size_scale = exp.size_scale;
  const auto flows = workload::generate_poisson(*exp.sizes, senders, receivers, wl);
  workload::submit(transport, flows);

  psim.start();
  psim.run_until(wl.start);
  const sim::LinkStats window_start = psim.aggregate_fabric_stats();
  psim.run_until(wl.start + wl.duration);
  const sim::LinkStats window_end = psim.aggregate_fabric_stats();
  psim.run_until(wl.start + wl.duration + 0.4);

  ExperimentResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.overhead = metrics::make_overhead_report(window_end, window_start);
  result.fabric_drops = psim.aggregate_fabric_stats().drops;
  result.events_processed = psim.events_processed();
  return result;
}

}  // namespace contra::bench
