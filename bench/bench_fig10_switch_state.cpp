// Fig. 10 — switch state (kB) of the generated programs vs topology size,
// for MU / WP / CA on fat-trees and random networks.
//
// Expected shape (paper): WP and CA above MU (tags and extra pids), all
// well under ~100 kB at 500 switches — a tiny fraction of switch SRAM.
#include <cstdio>
#include <string>

#include "compiler/compiler.h"
#include "lang/parser.h"
#include "metrics/timeline.h"
#include "topology/generators.h"

namespace {

using namespace contra;

lang::Policy make_policy(const std::string& kind, const topology::Topology& topo) {
  if (kind == "MU") return lang::parse_policy("minimize(path.util)");
  if (kind == "WP") {
    const std::string w0 = topo.name(0);
    const std::string w1 = topo.name(1);
    const std::string w2 = topo.name(2);
    return lang::parse_policy("minimize(if .* " + w0 + " .* then (0, path.util) else if .* " +
                              w1 + " .* then (1, path.util) else if .* " + w2 +
                              " .* then (2, path.util) else inf)");
  }
  return lang::parse_policy(
      "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))");
}

void sweep(const char* family, const std::vector<topology::Topology>& topologies) {
  metrics::Table table({"topology", "switches", "MU (kB)", "WP (kB)", "CA (kB)"});
  for (const topology::Topology& topo : topologies) {
    std::vector<std::string> row{family, std::to_string(topo.num_nodes())};
    for (const char* kind : {"MU", "WP", "CA"}) {
      const compiler::CompileResult result = compiler::compile(make_policy(kind, topo), topo);
      row.push_back(metrics::Table::num(result.max_switch_state_bytes() / 1024.0, "%.1f"));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Fig. 10 — per-switch state of generated programs (max over switches)\n\n");
  std::printf("(a) fat-tree topologies\n");
  std::vector<topology::Topology> fat_trees;
  for (uint32_t k : {4, 10, 14, 18, 20}) fat_trees.push_back(topology::fat_tree(k));
  sweep("fat-tree", fat_trees);

  std::printf("(b) random networks (avg degree 4)\n");
  std::vector<topology::Topology> randoms;
  for (uint32_t n : {100, 200, 300, 400, 500}) {
    randoms.push_back(topology::random_connected(n, 4.0, 7));
  }
  sweep("random", randoms);

  std::printf("Expected shape: linear growth; WP/CA above MU; << switch SRAM (tens of MB).\n");
  return 0;
}
