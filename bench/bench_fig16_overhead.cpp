// Fig. 16 — traffic overhead of Contra (probes + per-packet tags),
// normalized to ECMP, at 10% and 60% load for both workloads; plus the §6.5
// transient-loop traffic fractions.
//
// Expected shape (paper): all ratios within ~1% of 1.0 (Contra +0.79% over
// ECMP, +0.44% over Hula); loop traffic fractions ~1e-4.
#include "common.h"

namespace {

using namespace contra;
using namespace contra::bench;

ExperimentResult run(Plane plane, const workload::EmpiricalCdf& sizes, double load) {
  FatTreeExperiment exp;
  exp.plane = plane;
  exp.sizes = &sizes;
  exp.load = load;
  exp.seed = 16;
  exp.duration_s = 40e-3;
  exp.size_scale = 1.0;  // unscaled flows: overhead ratios need real volume
  return run_fat_tree_experiment(exp);
}

}  // namespace

int main() {
  std::printf(
      "Fig. 16 — fabric traffic normalized to ECMP (same workload), k=4\n"
      "fat-tree, probe period 256us\n\n");

  metrics::Table table({"workload", "load %", "ECMP", "Hula", "Contra", "Contra probe %"});
  for (const char* wl_name : {"web search", "cache"}) {
    const workload::EmpiricalCdf& sizes = std::string(wl_name) == "web search"
                                              ? workload::web_search_flow_sizes()
                                              : workload::cache_flow_sizes();
    for (double load : {0.1, 0.6}) {
      const ExperimentResult ecmp = run(Plane::kEcmp, sizes, load);
      const ExperimentResult hula = run(Plane::kHula, sizes, load);
      const ExperimentResult contra = run(Plane::kContra, sizes, load);
      table.add_row({wl_name, metrics::Table::num(load * 100, "%.0f"),
                     metrics::Table::num(1.0, "%.4f"),
                     metrics::Table::num(hula.overhead.normalized_to(ecmp.overhead), "%.4f"),
                     metrics::Table::num(contra.overhead.normalized_to(ecmp.overhead), "%.4f"),
                     metrics::Table::num(contra.overhead.probe_fraction() * 100, "%.2f")});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // §6.5 — transient-loop traffic under the MU policy at 60% load.
  std::printf("Transient-loop traffic (fraction of forwarded data packets):\n");
  {
    FatTreeExperiment exp;
    exp.plane = Plane::kContra;
    exp.load = 0.6;
    exp.seed = 17;
    exp.duration_s = 40e-3;
    const ExperimentResult result = run_fat_tree_experiment(exp);
    const double fraction =
        result.data_packets_forwarded
            ? static_cast<double>(result.looped_packets) / result.data_packets_forwarded
            : 0.0;
    std::printf("  fat-tree @60%%: %.5f%% looped (%llu packets), %llu loops broken\n",
                fraction * 100, static_cast<unsigned long long>(result.looped_packets),
                static_cast<unsigned long long>(result.loops_broken));
  }
  std::printf(
      "\nExpected shape: Contra within a few %% of ECMP (paper: +0.79%%; our scaled\n"
      "fabric carries less data per probe window, so the ratio is modestly larger);\n"
      "loop traffic a vanishing fraction (paper: 0.026%% fat-tree, 0.007%% Abilene).\n");
  return 0;
}
